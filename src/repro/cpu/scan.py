"""CPU baseline scans.

The paper compares against CPU implementations compiled with the Intel
compiler at full optimization — vectorized (SIMD), multi-threaded, and
inlined (section 5.2).  NumPy's vectorized kernels are the present-day
equivalent of that code generation, so these scans are the honest
baseline: same algorithms, same single-pass structure.

A deliberately branchy scalar variant of each scan is also provided; it
is the code shape whose branch mispredictions the paper's section 6.2.1
discusses, and it anchors the CPU cost model's misprediction term.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError
from ..gpu.types import CompareFunc


def predicate_mask(
    values: np.ndarray, op: CompareFunc, constant: float
) -> np.ndarray:
    """Vectorized evaluation of ``values op constant`` -> boolean mask."""
    values = np.asarray(values)
    return op.apply(values, constant)


def predicate_count(
    values: np.ndarray, op: CompareFunc, constant: float
) -> int:
    return int(np.count_nonzero(predicate_mask(values, op, constant)))


def range_mask(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """``low <= values <= high`` in one fused pass."""
    values = np.asarray(values)
    return (values >= low) & (values <= high)


def conjunctive_mask(
    columns: list[np.ndarray],
    ops: list[CompareFunc],
    constants: list[float],
) -> np.ndarray:
    """AND of simple predicates, one per attribute (the paper's
    multi-attribute query, figure 5)."""
    if not columns or len(columns) != len(ops) or len(ops) != len(constants):
        raise QueryError("columns, ops and constants must align and be non-empty")
    mask = predicate_mask(columns[0], ops[0], constants[0])
    for values, op, constant in zip(columns[1:], ops[1:], constants[1:]):
        mask &= predicate_mask(values, op, constant)
    return mask


def semilinear_mask(
    columns: list[np.ndarray],
    coefficients: np.ndarray,
    op: CompareFunc,
    constant: float,
) -> np.ndarray:
    """``dot(s, a) op b`` per record, accumulated in float32 to match the
    GPU's single-precision pipeline."""
    coefficients = np.asarray(coefficients, dtype=np.float32).ravel()
    if len(columns) != coefficients.size:
        raise QueryError(
            f"{len(columns)} columns but {coefficients.size} coefficients"
        )
    total = np.zeros(np.asarray(columns[0]).shape, dtype=np.float32)
    for values, coefficient in zip(columns, coefficients):
        total += np.asarray(values, dtype=np.float32) * coefficient
    return op.apply(total, np.float32(constant))


# -- branchy scalar references ------------------------------------------------


def predicate_mask_scalar(
    values: np.ndarray, op: CompareFunc, constant: float
) -> np.ndarray:
    """Per-element branchy scan: the code shape that suffers branch
    mispredictions on the CPU (paper section 6.2.1).  Reference/teaching
    implementation — identical output to :func:`predicate_mask`."""
    out = np.zeros(len(values), dtype=bool)
    for index, value in enumerate(values):
        if op.apply(np.asarray(value), constant):
            out[index] = True
    return out


def range_mask_scalar(
    values: np.ndarray, low: float, high: float
) -> np.ndarray:
    out = np.zeros(len(values), dtype=bool)
    for index, value in enumerate(values):
        if low <= value <= high:
            out[index] = True
    return out


def compact(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Copy the selected values into a dense array — the step the CPU must
    perform before running order statistics on a selected subset (paper
    section 5.9 test 3), and which the GPU avoids entirely."""
    return np.asarray(values)[np.asarray(mask, dtype=bool)].copy()

"""CPU cost model: simulated dual-Xeon-2.8GHz wall-clock.

Counterpart of :class:`repro.gpu.cost.GpuCostModel` for the paper's CPU
baseline — "dual 2.8 GHz Intel Xeon processors", Intel compiler with
vectorization, multi-threading, and IPO (section 5.2).

Constants are calibrated once against the figure-level ratios the paper
reports (see DESIGN.md section 5) and then reused unchanged everywhere:

* a simple-predicate SIMD scan runs at ~9.4 ns/record (figure 3: the GPU
  is ~3x faster end-to-end and ~20x faster compute-only);
* a fused range scan costs ~1.5 predicate-terms (figure 4 ratios);
* a semi-linear scan over four attributes costs ~10.8 ns/record
  (figure 6: GPU ~9x faster);
* QuickSelect visits ``2 + 2H(k/n)`` elements per input element (the
  classical Hoare-FIND expectation; ~3.39 at the median) at ~28.5 cycles
  per visit, of which 8.5 are the expected branch-misprediction cost —
  50% mispredict rate x the 17-cycle Pentium-4-era penalty the paper
  quotes in section 6.2.1 (figures 7-9: GPU ~2x faster);
* a SIMD sum runs at ~1.4 ns/record (figure 10: GPU ~20x *slower*).
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass
class CpuCostModel:
    """Analytic cost model for the paper's optimized CPU baselines."""

    #: Core clock (2.8 GHz Xeon).
    clock_hz: float = 2.8e9
    #: Branch-misprediction penalty in cycles (paper section 6.2.1).
    branch_miss_penalty_cycles: float = 17.0
    #: Misprediction rate of QuickSelect's partition branch (data-
    #: dependent 50/50 branch).
    quickselect_miss_rate: float = 0.5
    #: Base cycles per element visit in QuickSelect's partition loop
    #: (compare + swap + loop, including memory traffic).
    quickselect_base_cycles: float = 20.0
    #: SIMD scan cost for one simple predicate, ns/record.
    predicate_ns_per_record: float = 9.4
    #: Fused range scan relative to a single predicate term.
    range_term_factor: float = 1.5
    #: Semi-linear scan over four attributes, ns/record.
    semilinear_ns_per_record: float = 10.8
    #: SIMD accumulation, ns/record.
    sum_ns_per_record: float = 1.4
    #: Dense compaction (copy selected values out), ns/record scanned.
    compact_ns_per_record: float = 2.0

    # -- scans ---------------------------------------------------------------

    def predicate_scan_s(self, records: int, terms: int = 1) -> float:
        """One pass testing ``terms`` simple predicates per record.

        The paper's figure 5 shows CPU multi-attribute time scaling
        linearly with the attribute count, hence the ``terms`` factor.
        """
        return records * terms * self.predicate_ns_per_record * 1e-9

    def range_scan_s(self, records: int) -> float:
        return (
            records
            * self.range_term_factor
            * self.predicate_ns_per_record
            * 1e-9
        )

    def semilinear_scan_s(self, records: int, attributes: int = 4) -> float:
        # Per-attribute multiply-add work scales the 4-attribute figure.
        scale = attributes / 4.0
        return records * self.semilinear_ns_per_record * scale * 1e-9

    # -- order statistics ------------------------------------------------------

    def quickselect_cycles_per_visit(self) -> float:
        return (
            self.quickselect_base_cycles
            + self.quickselect_miss_rate * self.branch_miss_penalty_cycles
        )

    @staticmethod
    def quickselect_visits_per_element(
        k: int | None, records: int
    ) -> float:
        """Expected element visits per input element for Hoare's FIND.

        The classical result: ~2n comparisons selecting an extreme,
        ~3.39n selecting the median; smoothly ``2 + 2 H(p)`` with
        ``p = k/n`` and ``H`` the natural-log entropy (Knuth, TAOCP 3,
        5.2.2).  ``k=None`` means the median.
        """
        if records <= 1:
            return 2.0
        if k is None:
            p = 0.5
        else:
            p = min(max(k / records, 1e-12), 1.0 - 1e-12)
        entropy = -(p * math.log(p) + (1.0 - p) * math.log(1.0 - p))
        return 2.0 + 2.0 * entropy

    def quickselect_s(self, records: int, k: int | None = None) -> float:
        visits = records * self.quickselect_visits_per_element(k, records)
        return visits * self.quickselect_cycles_per_visit() / self.clock_hz

    def quickselect_with_selection_s(
        self, records: int, selectivity: float, k: int | None = None
    ) -> float:
        """Selection + order statistic: the CPU must first compact the
        selected values into a dense array, then run QuickSelect on the
        survivors (paper section 5.9, test 3)."""
        compaction = records * self.compact_ns_per_record * 1e-9
        return compaction + self.quickselect_s(
            int(round(records * selectivity)), k
        )

    def sort_s(self, records: int) -> float:
        """Comparison sort (merge/introsort), for the sorting extension
        comparison: ~4 cycles per element-comparison, n log2 n of them."""
        if records <= 1:
            return 0.0
        comparisons = records * math.log2(records)
        return comparisons * 4.0 / self.clock_hz

    # -- aggregation -------------------------------------------------------------

    def sum_s(self, records: int) -> float:
        return records * self.sum_ns_per_record * 1e-9

    def count_s(self, records: int) -> float:
        return records * self.sum_ns_per_record * 1e-9

"""The concurrency-sanitizer hook shim: zero cost until armed.

The dynamic race sanitizer (:mod:`repro.analysis.race`) needs to see
every shared-state access the substrate performs — stencil/depth buffer
mutations, texture uploads, occlusion-query traffic, plan-cache
lookups, tracer emission, fault/service counters — plus the
synchronization events that order them (thread-pool submit/join, lock
acquire/release, context checkpoint/restore).  Those call sites live in
:mod:`repro.gpu`, :mod:`repro.trace`, :mod:`repro.shard` and
:mod:`repro.service`, layers that must not import the analysis package
(and must not pay for instrumentation nobody asked for).

This module is the seam between them: a process-wide *recorder slot*
plus free functions the substrate calls unconditionally.  While no
recorder is installed (the default, and the only mode benchmarks run
in) every hook is a single ``None`` check — no allocation, no locking,
no branching beyond the guard.  :func:`repro.analysis.race.use_sanitizer`
installs a :class:`~repro.analysis.events.RaceRecorder` here, at which
point the same calls become typed access/synchronization events.

The recorder protocol (duck-typed; see
:class:`repro.analysis.events.RaceRecorder` for the real thing):

``note(obj_id, label, field, kind)``
    one shared-state access (``kind`` is ``"read"`` or ``"write"``);
``acquire(token)`` / ``release(token)``
    lock-shaped happens-before edges (release publishes, a later
    acquire of the same token joins);
``fork() -> token`` / ``task_begin(token)`` / ``task_end(token)`` /
``task_join(token)``
    thread-pool submit/join edges;
``sync(token)``
    a combined acquire+release on ``token`` (checkpoint hand-offs).
"""

from __future__ import annotations

import threading
from typing import Any

#: Access kinds (plain strings so hook call sites stay allocation-free).
READ = "read"
WRITE = "write"

#: The installed recorder, or ``None`` (the zero-cost default).
_recorder: Any = None


def install(recorder: Any) -> Any:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


def uninstall(previous: Any = None) -> None:
    """Remove the installed recorder (restoring ``previous``)."""
    global _recorder
    _recorder = previous


def active() -> Any:
    """The installed recorder, or ``None`` when the sanitizer is off."""
    return _recorder


def enabled() -> bool:
    return _recorder is not None


# -- access hooks -----------------------------------------------------------


def note(obj: Any, field: str, kind: str) -> None:
    """Record one access to ``obj.field`` (``kind`` = READ/WRITE).

    Identity is ``id(obj)``; call sites must only pass objects that
    live at least as long as the operation being sanitized (devices,
    tracers, caches, stats — never per-pass temporaries), so ids cannot
    be recycled mid-window.
    """
    recorder = _recorder
    if recorder is not None:
        recorder.note(
            id(obj), type(obj).__name__, field, kind
        )


# -- synchronization hooks --------------------------------------------------


def acquire(token: Any) -> None:
    """A lock-acquire edge on ``token`` (joins the last release)."""
    recorder = _recorder
    if recorder is not None:
        recorder.acquire(id(token))


def release(token: Any) -> None:
    """A lock-release edge on ``token`` (publishes this thread)."""
    recorder = _recorder
    if recorder is not None:
        recorder.release(id(token))


def sync(token: Any) -> None:
    """A combined acquire+release on ``token`` — the checkpoint/restore
    hand-off shape (whoever switches next inherits the switcher's
    history)."""
    recorder = _recorder
    if recorder is not None:
        recorder.sync(id(token))


def fork() -> Any:
    """Called in the submitting thread, immediately before handing a
    task to a pool.  Returns an opaque token to thread through
    :func:`task_begin` / :func:`task_end` / :func:`task_join` (or
    ``None`` while the sanitizer is off)."""
    recorder = _recorder
    if recorder is not None:
        return recorder.fork()
    return None


def task_begin(token: Any) -> None:
    """Called first thing inside the pooled task."""
    recorder = _recorder
    if recorder is not None and token is not None:
        recorder.task_begin(token)


def task_end(token: Any) -> None:
    """Called last thing inside the pooled task (a ``finally``)."""
    recorder = _recorder
    if recorder is not None and token is not None:
        recorder.task_end(token)


def task_join(token: Any) -> None:
    """Called in the joining thread after ``future.result()``."""
    recorder = _recorder
    if recorder is not None and token is not None:
        recorder.task_join(token)


# -- a lock whose edges the sanitizer sees ----------------------------------

# Method-scope aliases: inside TrackedLock the method names shadow the
# module-level hook functions.
_note_acquire = acquire
_note_release = release


class TrackedLock:
    """A mutex that reports its acquire/release edges to the sanitizer.

    Drop-in for :class:`threading.Lock` in the ``with``-statement shape
    (and duck-compatible enough for :class:`threading.Condition`).  The
    happens-before notes bracket the critical section from the inside:
    ``acquire`` is noted after the real acquire succeeds, ``release``
    immediately before the real release, so every access between them
    is ordered by the edge.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            _note_acquire(self)
        return got

    def release(self) -> None:
        _note_release(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

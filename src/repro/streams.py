"""Continuous queries over streams — the paper's closing future-work item.

Section 7: "We also plan to ... perform continuous queries over streams
using GPUs."  This module builds that on the reproduced primitives:

* a **sliding window** of the most recent ``capacity`` records lives in
  GPU textures, maintained as a ring — appending a batch overwrites the
  oldest slots with one ``glTexSubImage2D``-style partial upload per
  attribute (bandwidth proportional to the *batch*, not the window);
* **registered continuous queries** (COUNT / selectivity / SUM / AVG /
  MIN / MAX / MEDIAN / k-th largest, each with an optional predicate)
  are re-evaluated against the window after every append, using exactly
  the rendering-pass machinery of :mod:`repro.core`;
* per-append results and simulated GPU cost come back together, so the
  sustainable stream rate on the FX 5900 can be estimated.

Aggregations and counts are order-insensitive, so ring placement never
affects results; ``window_relation()`` exposes the current window as a
plain :class:`~repro.core.relation.Relation` for host-side verification.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

from .core import aggregates
from .core.column import Column
from .core.engine import split_copy_stats
from .core.predicates import Predicate
from .core.relation import Relation
from .core.select import execute_selection
from .errors import DataError, GpuError, QueryError
from .faults import current_executor
from .gpu.cost import GpuCostModel, GpuTime
from .gpu.pipeline import Device
from .gpu.texture import Texture, texture_shape_for

#: Supported continuous aggregate kinds.
KINDS = (
    "count",
    "selectivity",
    "sum",
    "average",
    "minimum",
    "maximum",
    "median",
    "kth_largest",
)


@dataclasses.dataclass(frozen=True)
class StreamColumn:
    """Schema entry: attribute name plus its integer bit width."""

    name: str
    bits: int

    def __post_init__(self):
        if not 1 <= self.bits <= 24:
            raise DataError(
                f"stream column {self.name!r}: bits={self.bits} "
                "outside [1, 24]"
            )


@dataclasses.dataclass
class ContinuousQuery:
    """A registered query, re-evaluated after every append."""

    name: str
    kind: str
    column: str | None = None
    predicate: Predicate | None = None
    k: int | None = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise QueryError(
                f"unknown continuous-query kind {self.kind!r}; "
                f"supported: {KINDS}"
            )
        needs_column = self.kind not in ("count", "selectivity")
        if needs_column and self.column is None:
            raise QueryError(
                f"{self.kind} queries need a column"
            )
        if self.kind == "kth_largest" and (self.k is None or self.k < 1):
            raise QueryError("kth_largest queries need k >= 1")


@dataclasses.dataclass
class StreamTick:
    """Outcome of one append: per-query results plus simulated cost."""

    #: Records currently in the window.
    window_size: int
    #: Total records ever appended.
    total_appended: int
    #: Query name -> value (None while the window is empty, or when a
    #: predicate selects nothing for an order statistic / AVG).
    results: dict
    #: Simulated GPU cost of the upload + re-evaluation.
    gpu_time: GpuTime
    #: Query name -> error text, for queries whose GPU evaluation
    #: failed this tick and whose result was recomputed host-side (only
    #: populated when the engine has a ResilientExecutor).
    degraded: dict = dataclasses.field(default_factory=dict)

    @property
    def gpu_ms(self) -> float:
        return self.gpu_time.total_ms


class StreamEngine:
    """Sliding-window continuous queries on the simulated GPU."""

    def __init__(
        self,
        schema: list[StreamColumn] | list[tuple[str, int]],
        capacity: int,
        cost_model: GpuCostModel | None = None,
        executor=None,
    ):
        """``executor`` attaches a
        :class:`~repro.faults.ResilientExecutor`: batch uploads and
        per-query evaluations retry transient GPU faults, and a query
        whose GPU evaluation still fails is recomputed host-side from
        the window — the tick degrades *per query*
        (:attr:`StreamTick.degraded`) instead of dying.  Defaults to
        the process-wide executor (usually ``None``).
        """
        if capacity < 1:
            raise DataError(
                f"window capacity must be positive, got {capacity}"
            )
        columns: list[StreamColumn] = []
        for entry in schema:
            if isinstance(entry, StreamColumn):
                columns.append(entry)
            else:
                name, bits = entry
                columns.append(StreamColumn(name, bits))
        if not columns:
            raise DataError("stream schema needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise DataError(f"duplicate stream columns in {names}")

        self.capacity = capacity
        self.schema = {column.name: column for column in columns}
        self.shape = texture_shape_for(capacity)
        self.device = Device(*self.shape)
        self.cost_model = cost_model or GpuCostModel()
        self.executor = (
            executor if executor is not None else current_executor()
        )
        self.total_appended = 0
        self._queries: dict[str, ContinuousQuery] = {}
        self._textures: dict[str, Texture] = {}
        self._packed: dict[tuple[str, ...], Texture] = {}
        for column in columns:
            texture = Texture.from_values(
                np.zeros(capacity, dtype=np.float32), shape=self.shape
            )
            self.device.bind_texture(0, texture)  # make resident
            self._textures[column.name] = texture

    # -- schema / window state -------------------------------------------------

    @property
    def window_size(self) -> int:
        return min(self.total_appended, self.capacity)

    @property
    def column_names(self) -> list[str]:
        return list(self.schema)

    def window_relation(self) -> Relation:
        """The current window as a host-side relation (verification,
        ad-hoc queries)."""
        if self.window_size == 0:
            raise QueryError("the stream window is empty")
        columns = []
        for name, meta in self.schema.items():
            values = self._textures[name].linear_view()[
                : self.window_size, 0
            ]
            columns.append(
                Column.integer(name, values.copy(), bits=meta.bits)
            )
        return Relation("window", columns)

    # -- continuous queries ------------------------------------------------------

    def register(self, query: ContinuousQuery) -> None:
        """Register (or replace) a continuous query."""
        needs_column = query.kind not in ("count", "selectivity")
        if needs_column and query.column not in self.schema:
            raise QueryError(
                f"query {query.name!r}: unknown column {query.column!r}"
            )
        if query.predicate is not None:
            self._validate_predicate_columns(query)
        self._queries[query.name] = query

    def _validate_predicate_columns(self, query: ContinuousQuery):
        from .sql.planner import predicate_columns

        unknown = predicate_columns(query.predicate) - set(self.schema)
        if unknown:
            raise QueryError(
                f"query {query.name!r}: unknown predicate columns "
                f"{sorted(unknown)}"
            )

    def unregister(self, name: str) -> None:
        self._queries.pop(name, None)

    @property
    def queries(self) -> list[str]:
        return list(self._queries)

    # -- appends ---------------------------------------------------------------------

    def append(self, batch: Mapping[str, np.ndarray]) -> StreamTick:
        """Append a batch of records and re-evaluate every query.

        ``batch`` maps every schema column to an equal-length array.
        Batches larger than the window keep only their newest
        ``capacity`` records (the older ones would be evicted within
        the same tick anyway).
        """
        arrays = self._validate_batch(batch)
        size = arrays[self.column_names[0]].shape[0]
        self.device.stats.reset()
        if size:
            # Ring writes are idempotent (total_appended advances only
            # afterwards), so a transient upload fault simply re-writes
            # the same slots.
            if self.executor is None:
                self._write_ring(arrays, size)
            else:
                self.executor.run(
                    lambda: self._write_ring(arrays, size),
                    op="stream_append",
                    tracer=self.device.tracer,
                )
            self.total_appended += size
        results, degraded = self._evaluate()
        window = self.device.stats.snapshot()
        copy, compute = split_copy_stats(window)
        gpu_time = self.cost_model.time(copy) + self.cost_model.time(
            compute
        )
        return StreamTick(
            window_size=self.window_size,
            total_appended=self.total_appended,
            results=results,
            gpu_time=gpu_time,
            degraded=degraded,
        )

    def _validate_batch(self, batch) -> dict[str, np.ndarray]:
        missing = set(self.schema) - set(batch)
        if missing:
            raise DataError(
                f"batch missing columns {sorted(missing)}"
            )
        arrays = {}
        size = None
        for name, meta in self.schema.items():
            values = np.asarray(batch[name])
            if values.ndim != 1:
                raise DataError(
                    f"batch column {name!r} must be 1-D"
                )
            if size is None:
                size = values.size
            elif values.size != size:
                raise DataError("batch columns must have equal length")
            if values.size and (
                np.any(values < 0)
                or np.any(values >= (1 << meta.bits))
            ):
                raise DataError(
                    f"batch column {name!r}: values outside "
                    f"[0, 2**{meta.bits})"
                )
            if values.size > self.capacity:
                values = values[-self.capacity:]
            arrays[name] = values.astype(np.float32)
        return arrays

    def _write_ring(self, arrays: dict[str, np.ndarray], size: int):
        """Scatter the batch into ring slots with at most two partial
        uploads per attribute."""
        start = self.total_appended % self.capacity
        first = min(size, self.capacity - start)
        for name, values in arrays.items():
            texture = self._textures[name]
            self.device.upload_texels(texture, start, values[:first])
            if first < size:
                self.device.upload_texels(
                    texture, 0, values[first:]
                )
        self._packed.clear()  # packed layouts are rebuilt lazily

    # -- evaluation --------------------------------------------------------------------

    def column_texture(self, name: str) -> tuple[Texture, float, int]:
        """TextureProvider protocol (window-sized view)."""
        meta = self.schema[name]
        texture = self._textures[name]
        texture.count = self.window_size
        return texture, 1.0 / (1 << meta.bits), 0

    def packed_texture(self, names: tuple[str, ...]) -> Texture:
        """TextureProvider protocol: RGBA pack for semi-linear and
        polynomial predicates, rebuilt after ring writes."""
        names = tuple(names)
        texture = self._packed.get(names)
        if texture is None:
            columns = [
                self._textures[name].linear_view()[:, 0].copy()
                for name in names
            ]
            num_texels = self.shape[0] * self.shape[1]
            while len(columns) < 4:
                columns.append(np.zeros(num_texels, dtype=np.float32))
            texture = Texture.from_columns(columns, shape=self.shape)
            # Honest accounting: refreshing the packed layout after a
            # ring write re-uploads it.
            self.device.bind_texture(0, texture)
            self._packed[names] = texture
        texture.count = self.window_size
        return texture

    def _evaluate(self) -> tuple[dict, dict]:
        results: dict = {}
        degraded: dict = {}
        if self.window_size == 0:
            return {name: None for name in self._queries}, degraded
        relation = self.window_relation()
        for name, query in self._queries.items():
            if self.executor is None:
                results[name] = self._evaluate_one(query, relation)
                continue
            def attempt(q=query):
                # Start every attempt from clean device state — a
                # fault can leave a dangling occlusion query behind.
                self.device.abort_query()
                return self._evaluate_one(q, relation)

            try:
                results[name] = self.executor.run(
                    attempt,
                    op=f"stream:{name}",
                    tracer=self.device.tracer,
                )
            except GpuError as error:
                # Degrade this query alone: recompute host-side from
                # the window copy; the other queries proceed on GPU.
                self.executor.stats.record_fallback(f"stream:{name}")
                if self.device.tracer is not None:
                    self.device.tracer.record_event(
                        "fallback",
                        op=f"stream:{name}",
                        error=type(error).__name__,
                        detail=str(error),
                    )
                results[name] = self._evaluate_one_cpu(query, relation)
                degraded[name] = f"{type(error).__name__}: {error}"
        return results, degraded

    def _evaluate_one(self, query: ContinuousQuery, relation: Relation):
        device = self.device
        window = self.window_size
        valid = None
        valid_count = window
        if query.predicate is not None:
            outcome = execute_selection(
                device, relation, self, query.predicate
            )
            valid = outcome.valid_stencil
            valid_count = outcome.count

        if query.kind == "count":
            return valid_count
        if query.kind == "selectivity":
            return valid_count / window
        if valid_count == 0:
            return None

        meta = self.schema[query.column]
        texture, scale, channel = self.column_texture(query.column)
        if query.kind == "sum":
            return aggregates.accumulate(
                device, texture, meta.bits,
                channel=channel, valid_stencil=valid,
            )
        if query.kind == "average":
            total = aggregates.accumulate(
                device, texture, meta.bits,
                channel=channel, valid_stencil=valid,
            )
            return total / valid_count
        if query.kind == "maximum":
            return aggregates.maximum(
                device, texture, meta.bits, scale,
                channel=channel, valid_stencil=valid,
            )
        if query.kind == "minimum":
            return aggregates.minimum(
                device, texture, meta.bits, scale, valid_count,
                channel=channel, valid_stencil=valid,
            )
        if query.kind == "median":
            return aggregates.median(
                device, texture, meta.bits, scale, valid_count,
                channel=channel, valid_stencil=valid,
            )
        # kth_largest
        if query.k > valid_count:
            return None
        return aggregates.kth_largest(
            device, texture, meta.bits, query.k, scale,
            channel=channel, valid_stencil=valid,
        )

    def _evaluate_one_cpu(
        self, query: ContinuousQuery, relation: Relation
    ):
        """Host-side recomputation of one query from the window copy.

        Window columns are unsigned integers (stored == value), so the
        GPU conventions reduce to plain numpy: the k-th largest is
        ``partition(values, n - k)[n - k]`` and the median is the
        ceil(n/2)-th largest — identical to what the rendering passes
        converge to.
        """
        window = self.window_size
        if query.predicate is not None:
            mask = query.predicate.mask(relation)
            valid_count = int(mask.sum())
        else:
            mask = None
            valid_count = window

        if query.kind == "count":
            return valid_count
        if query.kind == "selectivity":
            return valid_count / window
        if valid_count == 0:
            return None

        values = np.asarray(
            relation.column(query.column).values, dtype=np.int64
        )
        if mask is not None:
            values = values[mask]

        def kth_largest(k: int) -> int:
            index = values.size - k
            return int(np.partition(values, index)[index])

        if query.kind == "sum":
            return int(values.sum())
        if query.kind == "average":
            return int(values.sum()) / valid_count
        if query.kind == "maximum":
            return int(values.max())
        if query.kind == "minimum":
            return int(values.min())
        if query.kind == "median":
            return kth_largest((valid_count + 1) // 2)
        # kth_largest
        if query.k > valid_count:
            return None
        return kth_largest(query.k)

"""Seeded synthetic value distributions.

Building blocks for the workload generators.  Everything is integer
(< 2**24) and deterministic given a seed, because the paper's bit-sliced
algorithms and pass counts depend on value ranges and bit widths.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..gpu.types import MAX_EXACT_INT


def _check(n: int, bits: int) -> None:
    if n < 0:
        raise DataError(f"record count must be non-negative, got {n}")
    if not 1 <= bits <= 24:
        raise DataError(f"bits={bits} outside [1, 24]")


def uniform_ints(n: int, bits: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform integers spanning the full ``bits``-bit range."""
    _check(n, bits)
    return rng.integers(0, 1 << bits, size=n, dtype=np.int64)


def heavy_tail_ints(
    n: int,
    bits: int,
    rng: np.random.Generator,
    shape: float = 1.3,
) -> np.ndarray:
    """Heavy-tailed (Pareto-like) integers clipped to ``bits`` bits.

    Matches traffic-measurement attributes such as byte counts: most
    records small, a long tail of large flows, high variance — the
    profile the paper describes for the TCP/IP ``data_count`` attribute
    (section 5.9: "19 bits ... and has a high variance").
    """
    _check(n, bits)
    raw = rng.pareto(shape, size=n) + 1.0
    top = float(1 << bits) - 1.0
    scaled = np.minimum(raw * (top / 50.0), top)
    return np.floor(scaled).astype(np.int64)


def lognormal_ints(
    n: int,
    rng: np.random.Generator,
    mean: float = 7.5,
    sigma: float = 0.6,
    cap_bits: int = 20,
) -> np.ndarray:
    """Log-normal integers (income-like distributions)."""
    _check(n, cap_bits)
    raw = rng.lognormal(mean, sigma, size=n)
    top = float((1 << cap_bits) - 1)
    return np.floor(np.minimum(raw, top)).astype(np.int64)


def correlated_ints(
    base: np.ndarray,
    bits: int,
    rng: np.random.Generator,
    correlation: float = 0.6,
) -> np.ndarray:
    """Integers positively correlated with ``base`` (e.g. retransmissions
    track data volume), clipped to ``bits`` bits."""
    if not 0.0 <= correlation <= 1.0:
        raise DataError(f"correlation {correlation} outside [0, 1]")
    _check(base.size, bits)
    top = float((1 << bits) - 1)
    base_max = float(base.max()) if base.size and base.max() > 0 else 1.0
    signal = (base.astype(np.float64) / base_max) * top
    noise = rng.uniform(0.0, top, size=base.size)
    mixed = correlation * signal + (1.0 - correlation) * noise
    return np.floor(np.clip(mixed, 0.0, top)).astype(np.int64)


def clipped_to_exact(values: np.ndarray) -> np.ndarray:
    """Clip to the float32-exact integer range (defensive helper)."""
    return np.clip(values, 0, MAX_EXACT_INT - 1)

"""Synthetic retail workload: a two-relation schema for join demos.

Neither of the paper's datasets has a foreign-key relationship, so the
join extension and the SQL ``JOIN`` path get their own workload: an
``orders`` fact table referencing a ``customers`` dimension, with a
skewed order distribution (a few customers generate most orders) and a
controllable fraction of dangling references (orders whose customer
churned), so joins exercise both fan-out and misses.
"""

from __future__ import annotations

import numpy as np

from ..core.column import Column
from ..core.relation import Relation
from ..errors import DataError


def make_retail(
    num_orders: int = 50_000,
    num_customers: int = 2_000,
    dangling_fraction: float = 0.05,
    seed: int = 77,
) -> tuple[Relation, Relation]:
    """Build ``(orders, customers)``.

    ``orders``: ``customer_id`` (Zipf-skewed over the customer domain),
    ``amount`` (heavy-tailed, 16 bits), ``items`` (1-99).
    ``customers``: ``id`` (dense 0..n-1), ``tier`` (0-3, few platinum),
    ``region`` (0-7).

    ``dangling_fraction`` of orders reference ids beyond the customer
    table (churned accounts): those orders match nothing in an
    equi-join.
    """
    if num_orders < 1 or num_customers < 1:
        raise DataError("need at least one order and one customer")
    if not 0.0 <= dangling_fraction < 1.0:
        raise DataError(
            f"dangling_fraction {dangling_fraction} outside [0, 1)"
        )
    id_bits = max(1, int(num_customers * 2 - 1).bit_length())
    if id_bits > 24:
        raise DataError("customer domain exceeds 24 bits")
    rng = np.random.default_rng(seed)

    # Zipf-skewed customer ids: rank r gets weight 1/(r+1).
    ranks = np.arange(num_customers, dtype=np.float64)
    weights = 1.0 / (ranks + 1.0)
    weights /= weights.sum()
    customer_id = rng.choice(
        num_customers, size=num_orders, p=weights
    ).astype(np.int64)
    dangling = rng.random(num_orders) < dangling_fraction
    # Churned ids live just past the live domain.
    churned_ids = num_customers + rng.integers(
        0, max(1, num_customers // 10), size=num_orders
    )
    customer_id = np.where(dangling, churned_ids, customer_id)
    customer_id = np.minimum(customer_id, (1 << id_bits) - 1)

    amount = np.minimum(
        np.floor((rng.pareto(1.5, num_orders) + 1) * 500),
        (1 << 16) - 1,
    ).astype(np.int64)
    items = rng.integers(1, 100, num_orders)

    orders = Relation(
        "orders",
        [
            Column.integer("customer_id", customer_id, bits=id_bits),
            Column.integer("amount", amount, bits=16),
            Column.integer("items", items, bits=7),
        ],
    )
    customers = Relation(
        "customers",
        [
            Column.integer(
                "id", np.arange(num_customers), bits=id_bits
            ),
            # Tiers 0-3 with few platinum (3) accounts.
            Column.integer(
                "tier",
                rng.choice(4, size=num_customers,
                           p=[0.55, 0.3, 0.12, 0.03]),
                bits=2,
            ),
            Column.integer(
                "region", rng.integers(0, 8, num_customers), bits=3
            ),
        ],
    )
    return orders, customers

"""Synthetic census workload.

The paper's second benchmark is "a census database [6] consisting of
monthly income information" with 360 K records and four attributes used
per record (section 5.1); it reports the results are "consistent with"
the TCP/IP numbers.  The Census Bureau CPS extract is not redistributed
here, so this generator synthesizes a demographically-shaped equivalent:
log-normal income, plausible age / weekly-hours / education marginals,
and income weakly correlated with education.
"""

from __future__ import annotations

import numpy as np

from ..core.column import Column
from ..core.relation import Relation
from ..errors import DataError
from .distributions import lognormal_ints

#: Record count of the paper's census database.
PAPER_NUM_RECORDS = 360_000

ATTRIBUTES = ("monthly_income", "age", "hours_per_week", "education_years")


def make_census(
    num_records: int = PAPER_NUM_RECORDS, seed: int = 1990
) -> Relation:
    """Build the synthetic census relation."""
    if num_records <= 0:
        raise DataError(
            f"num_records must be positive, got {num_records}"
        )
    rng = np.random.default_rng(seed)

    education = np.clip(
        np.round(rng.normal(13.0, 3.0, size=num_records)), 0, 20
    ).astype(np.int64)
    # Income: log-normal with a mild education premium (~9%/year).
    premium = np.exp(0.09 * (education - 13.0))
    income = np.floor(
        np.minimum(
            rng.lognormal(7.8, 0.7, size=num_records) * premium,
            float((1 << 17) - 1),
        )
    ).astype(np.int64)
    age = np.clip(
        np.round(rng.normal(41.0, 14.0, size=num_records)), 16, 99
    ).astype(np.int64)
    hours = np.clip(
        np.round(rng.normal(38.0, 10.0, size=num_records)), 0, 99
    ).astype(np.int64)

    return Relation(
        "census",
        [
            Column.integer("monthly_income", income, bits=17),
            Column.integer("age", age, bits=7),
            Column.integer("hours_per_week", hours, bits=7),
            Column.integer("education_years", education, bits=5),
        ],
    )


# Re-exported so callers can reuse the underlying income generator.
__all__ = ["ATTRIBUTES", "PAPER_NUM_RECORDS", "lognormal_ints", "make_census"]

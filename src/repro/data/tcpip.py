"""Synthetic TCP/IP monitoring workload.

The paper benchmarks on "a database consisting of TCP/IP data for
monitoring traffic patterns" with one million records of four attributes
``(data_count, data_loss, flow_rate, retransmissions)`` (section 5.1).
That trace is unavailable (it was provided privately by Jasleen Sahni),
so this generator produces a synthetic equivalent with the properties
the experiments actually depend on:

* ``data_count`` needs 19 significant bits and has high variance
  (section 5.9) — heavy-tailed flow byte counts;
* the other attributes have realistic, distinct bit widths so
  multi-attribute queries exercise different normalization scales;
* ``retransmissions`` correlates with ``data_loss`` (lost data gets
  retransmitted), giving boolean queries non-trivial joint selectivity;
* everything is deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from ..core.column import Column
from ..core.relation import Relation
from ..errors import DataError
from .distributions import correlated_ints, heavy_tail_ints, uniform_ints

#: Record count of the paper's TCP/IP database.
PAPER_NUM_RECORDS = 1_000_000

#: Bit width of ``data_count`` in the paper (section 5.9).
DATA_COUNT_BITS = 19

#: The four attributes, in paper order.
ATTRIBUTES = ("data_count", "data_loss", "flow_rate", "retransmissions")


def make_tcpip(
    num_records: int = PAPER_NUM_RECORDS, seed: int = 2004
) -> Relation:
    """Build the synthetic TCP/IP relation.

    ``data_count`` is generated heavy-tailed and then forced to actually
    occupy all 19 bits (the paper's bit count drives the ``KthLargest``
    and ``Accumulator`` pass counts, so it must not collapse for small
    samples).
    """
    if num_records <= 0:
        raise DataError(
            f"num_records must be positive, got {num_records}"
        )
    rng = np.random.default_rng(seed)

    data_count = heavy_tail_ints(num_records, DATA_COUNT_BITS, rng)
    # Pin the extremes so the declared 19-bit width is always exercised.
    data_count[rng.integers(0, num_records)] = (1 << DATA_COUNT_BITS) - 1

    data_loss = heavy_tail_ints(num_records, 10, rng, shape=1.8)
    flow_rate = uniform_ints(num_records, 16, rng)
    retransmissions = correlated_ints(data_loss, 8, rng, correlation=0.7)

    return Relation(
        "tcpip",
        [
            Column.integer("data_count", data_count, bits=DATA_COUNT_BITS),
            Column.integer("data_loss", data_loss, bits=10),
            Column.integer("flow_rate", flow_rate, bits=16),
            Column.integer("retransmissions", retransmissions, bits=8),
        ],
    )

"""Selectivity calibration.

The paper pins every selection experiment to a fixed selectivity
("a predicate evaluation with 60% selectivity", figures 3-5; "we set the
valid range of values between the 20th percentile and 80th percentile",
section 5.6).  These helpers derive the constants that achieve a target
selectivity on a concrete dataset.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..gpu.types import CompareFunc


def _validate(selectivity: float) -> None:
    if not 0.0 < selectivity < 1.0:
        raise DataError(
            f"selectivity {selectivity} must be strictly inside (0, 1)"
        )


def threshold_for_selectivity(
    values: np.ndarray,
    selectivity: float,
    op: CompareFunc = CompareFunc.GEQUAL,
) -> float:
    """A constant ``c`` such that ``values op c`` holds for roughly the
    requested fraction of records.

    Exact selectivity is unattainable with duplicated values; the
    returned threshold is the appropriate order statistic, which is what
    the paper's percentile-based setup does.
    """
    _validate(selectivity)
    values = np.asarray(values)
    if values.size == 0:
        raise DataError("cannot calibrate selectivity on empty data")
    if op in (CompareFunc.GEQUAL, CompareFunc.GREATER):
        quantile = 1.0 - selectivity
    elif op in (CompareFunc.LEQUAL, CompareFunc.LESS):
        quantile = selectivity
    else:
        raise DataError(
            f"selectivity calibration needs an ordering operator, "
            f"got {op.name}"
        )
    return float(np.quantile(values, quantile, method="nearest"))


def range_for_selectivity(
    values: np.ndarray, selectivity: float, center: float = 0.5
) -> tuple[float, float]:
    """Bounds ``[low, high]`` capturing roughly ``selectivity`` of the
    records, centered on the ``center`` quantile.

    The paper's 60% range query uses the 20th..80th percentiles — i.e.
    ``selectivity=0.6, center=0.5``.
    """
    _validate(selectivity)
    values = np.asarray(values)
    if values.size == 0:
        raise DataError("cannot calibrate selectivity on empty data")
    half = selectivity / 2.0
    lo_q = min(max(center - half, 0.0), 1.0 - selectivity)
    hi_q = lo_q + selectivity
    low = float(np.quantile(values, lo_q, method="nearest"))
    high = float(np.quantile(values, hi_q, method="nearest"))
    return low, high


def achieved_selectivity(mask: np.ndarray) -> float:
    """The fraction of records a boolean mask selects."""
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        return 0.0
    return float(np.count_nonzero(mask)) / mask.size

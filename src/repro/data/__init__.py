"""Synthetic workloads standing in for the paper's datasets.

``make_tcpip`` and ``make_census`` replace the private TCP/IP trace and
the Census CPS extract with seeded generators that match the properties
the experiments depend on (cardinality, bit widths, variance, correlated
attributes); ``selectivity`` calibrates query constants to the paper's
fixed selectivities.
"""

from .census import make_census
from .retail import make_retail
from .distributions import (
    correlated_ints,
    heavy_tail_ints,
    lognormal_ints,
    uniform_ints,
)
from .selectivity import (
    achieved_selectivity,
    range_for_selectivity,
    threshold_for_selectivity,
)
from .tcpip import ATTRIBUTES, DATA_COUNT_BITS, PAPER_NUM_RECORDS, make_tcpip

__all__ = [
    "ATTRIBUTES",
    "DATA_COUNT_BITS",
    "PAPER_NUM_RECORDS",
    "achieved_selectivity",
    "correlated_ints",
    "heavy_tail_ints",
    "lognormal_ints",
    "make_census",
    "make_retail",
    "make_tcpip",
    "range_for_selectivity",
    "threshold_for_selectivity",
    "uniform_ints",
]

"""Shard fan-out verifier: can shard generations ever alias?

The sharded execution layer (:mod:`repro.shard`) runs N per-shard
engines concurrently and trusts their stencil/depth **generation
counters** to be mutually incomparable: a plan-cache entry, selection
snapshot or staleness check minted on one shard must never validate
against another shard's buffers.  The runtime mechanism is cid banding —
shard *i*'s :class:`~repro.gpu.context.ContextScheduler` starts at
``base_cid = (i + 1) * SHARD_CID_STRIDE``, putting all its generations
in ``[base_cid * GENERATION_STRIDE, (base_cid + span) *
GENERATION_STRIDE)``.

:func:`verify_shard_fanout` is the static half of that guarantee: given
the band descriptors of one shard pool (host band included), it fires
:data:`~repro.analysis.rules.SHARD_ALIASING` (H108) for every pair of
overlapping bands and for degenerate (empty / negative) bands.
``GpuEngine(debug=True, shards=N)`` runs it at pool construction, and
the shard test-suite pins the clean verdict for the shipped layout.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..errors import PlanVerificationError
from ..gpu.context import GENERATION_STRIDE
from .diagnostics import Diagnostic, Span
from .rules import SHARD_ALIASING


@dataclasses.dataclass(frozen=True)
class ShardBand:
    """One participant's virtual-context cid range (host or shard)."""

    #: ``"host"`` or ``"shard-<i>"``.
    owner: str
    #: First cid this participant's scheduler hands out.
    base_cid: int
    #: Number of cids reserved for it (``SHARD_CID_STRIDE``).
    cid_span: int

    @property
    def generations(self) -> tuple[int, int]:
        """The half-open stencil/depth generation interval every
        counter of this participant stays inside."""
        return (
            self.base_cid * GENERATION_STRIDE,
            (self.base_cid + self.cid_span) * GENERATION_STRIDE,
        )

    def describe(self) -> str:
        lo, hi = self.generations
        return (
            f"{self.owner}: cids [{self.base_cid}, "
            f"{self.base_cid + self.cid_span}), generations "
            f"[{lo}, {hi})"
        )


@dataclasses.dataclass
class ShardFanoutReport:
    """Verdict for one shard pool's band layout.

    Diagnostics' spans index into :attr:`bands` (the later of the two
    overlapping participants).
    """

    bands: list[ShardBand]
    diagnostics: list[Diagnostic]

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def errors(self) -> list[Diagnostic]:
        return list(self.diagnostics)

    def render_text(self) -> str:
        verdict = "ok" if self.ok else "REJECTED"
        lines = [
            f"shard fan-out of {len(self.bands)} bands [{verdict}]"
        ]
        for index, band in enumerate(self.bands):
            lines.append(f"  {index}: {band.describe()}")
        if not self.diagnostics:
            lines.append("  (no aliasing)")
        for diagnostic in self.diagnostics:
            lines.append(f"  ! {diagnostic.render_text()}")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.ok:
            return
        raise PlanVerificationError(
            f"shard fan-out of {len(self.bands)} bands aliases "
            "generation state:\n" + self.render_text(),
            report=self,
        )


def verify_shard_fanout(
    bands: Sequence[ShardBand],
) -> ShardFanoutReport:
    """Check one shard pool's generation-band layout for aliasing.

    ``bands`` describes every participant sharing combined results —
    the host engine plus each shard (``ShardedDevice.bands()`` builds
    exactly that list).  Fires H108 for degenerate bands and for every
    overlapping pair; a clean report proves no generation counter of
    one participant can ever equal another's.
    """
    checked = list(bands)
    diagnostics: list[Diagnostic] = []
    for index, band in enumerate(checked):
        if band.base_cid < 0 or band.cid_span <= 0:
            diagnostics.append(SHARD_ALIASING.diagnostic(
                Span.at(index),
                f"band {index} ({band.describe()}) is degenerate; "
                "every participant needs a non-empty cid range at or "
                "above 0",
            ))
    for index, band in enumerate(checked):
        lo, hi = band.generations
        for earlier_index in range(index):
            earlier = checked[earlier_index]
            earlier_lo, earlier_hi = earlier.generations
            if lo < earlier_hi and earlier_lo < hi:
                diagnostics.append(SHARD_ALIASING.diagnostic(
                    Span.at(index),
                    f"band {index} ({band.describe()}) overlaps band "
                    f"{earlier_index} ({earlier.describe()}); a "
                    "generation minted on one could validate a "
                    "snapshot taken on the other — give every shard "
                    "a disjoint base_cid band",
                ))
    return ShardFanoutReport(bands=checked, diagnostics=diagnostics)

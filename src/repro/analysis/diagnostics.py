"""Typed, span-carrying diagnostics for the schedule verifier.

Every hazard the verifier rejects is reported as a :class:`Diagnostic`
carrying the rule that fired, a severity, and the :class:`Span` of pass
indices it anchors to — so ``render_text()`` output lines up with
:meth:`repro.plan.PassSchedule.render_text`, whose ``- `` node lines
are exactly the indices the spans cite.
"""

from __future__ import annotations

import dataclasses
import enum

from ..errors import PlanVerificationError
from ..plan.passes import PassSchedule


class Severity(enum.Enum):
    """How bad a finding is: errors fail verification, warnings do not."""

    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class Span:
    """An inclusive range of node indices into ``PassSchedule.nodes``.

    ``start == end`` pins a single pass; ``Span.at_end(n)`` marks a
    hazard detected after the final pass (e.g. a leaked query).
    """

    start: int
    end: int

    @classmethod
    def at(cls, index: int) -> "Span":
        return cls(start=index, end=index)

    @classmethod
    def at_end(cls, num_nodes: int) -> "Span":
        index = max(num_nodes - 1, 0)
        return cls(start=index, end=index)

    def render(self) -> str:
        if self.start == self.end:
            return f"pass {self.start}"
        return f"passes {self.start}-{self.end}"


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One verifier finding: a typed rule violation at a span."""

    code: str
    name: str
    severity: Severity
    message: str
    span: Span

    def render_text(self) -> str:
        return (
            f"{self.code} {self.name} [{self.severity.value}] "
            f"at {self.span.render()}: {self.message}"
        )


@dataclasses.dataclass
class VerificationReport:
    """Every diagnostic one schedule produced, plus the verdict."""

    schedule: PassSchedule
    diagnostics: list[Diagnostic]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostic fired."""
        return not any(
            d.severity is Severity.ERROR for d in self.diagnostics
        )

    @property
    def errors(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.ERROR
        ]

    def render_text(self) -> str:
        """Human-readable report mirroring the schedule text format."""
        verdict = "ok" if self.ok else "REJECTED"
        header = (
            f"verify {self.schedule.op} ON {self.schedule.table} "
            f"[{verdict}]"
        )
        lines = [header]
        if not self.diagnostics:
            lines.append("  (no hazards)")
        for diagnostic in self.diagnostics:
            lines.append(f"  ! {diagnostic.render_text()}")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.PlanVerificationError` when any
        error-severity hazard fired."""
        if self.ok:
            return
        raise PlanVerificationError(
            f"schedule {self.schedule.op!r} ON "
            f"{self.schedule.table!r} failed verification:\n"
            + self.render_text(),
            report=self,
        )

"""``repro-lint``: AST rules over the codebase's recurring bug shapes.

Each rule encodes a defect class this repository has actually shipped
(or nearly shipped) and that generic linters do not know about — raw
device calls that bypass the resilient-retry layer, stencil readbacks
without a staleness check, exception handlers that would swallow
injected :class:`~repro.errors.GpuError` faults, float equality on the
substrate's fixed-point encodings, and the deprecated string device
form.  Pure stdlib (:mod:`ast`), so the gate runs anywhere the tests
run.

Findings on a line ending with ``# repro-lint: disable=<name>[,...]``
are suppressed for the named rules on that line; when the marker sits
on a comment-only line, it covers the following line instead.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re


@dataclasses.dataclass(frozen=True)
class LintRule:
    """One lint rule: a code, a slug usable in suppressions, a summary."""

    code: str
    name: str
    summary: str


RAW_DEVICE = LintRule(
    "L201",
    "raw-device",
    "a layer above the engines constructs a Device or issues mutating "
    "device calls, bypassing ResilientExecutor retry/fallback",
)

UNCHECKED_STENCIL_READ = LintRule(
    "L202",
    "unchecked-stencil-read",
    "a function reads the stencil buffer back without consulting "
    "stencil_generation, so it can consume a stale selection mask",
)

BARE_EXCEPT = LintRule(
    "L203",
    "bare-except",
    "a bare or blanket except swallows GpuError, hiding injected "
    "faults from the resilience layer",
)

FLOAT_EQ = LintRule(
    "L204",
    "float-eq",
    "float equality comparison; fixed-point and bias-encoded values "
    "must compare via integers or tolerances",
)

STRING_DEVICE = LintRule(
    "L205",
    "string-device",
    "device= passed as a string literal; use the repro.sql.Device "
    "enum (the string form has been removed and raises SqlPlanError)",
)

UNSCHEDULED_STENCIL_WRITE = LintRule(
    "L206",
    "unscheduled-stencil-write",
    "a layer outside repro.gpu / repro.core writes device stencil or "
    "depth state directly, bypassing the context scheduler's "
    "checkpoint/restore isolation",
)

DIRECT_INTERPRETER = LintRule(
    "L207",
    "direct-interpreter",
    "ProgramInterpreter used outside repro.gpu; fragment programs run "
    "through the device (which picks the JIT or interpreter backend), "
    "not by interpreting directly",
)

UNLOCKED_POOL_CAPTURE = LintRule(
    "L208",
    "unlocked-pool-capture",
    "a callable submitted to a thread pool mutates captured engine/"
    "device/tracer state without holding a lock; pool threads race on "
    "the shared object",
)

OFF_SHARD_ENGINE = LintRule(
    "L209",
    "off-shard-engine",
    "a pool-submitted callable reaches into the shard table or the "
    "parent engine instead of using its own shard argument; per-shard "
    "state is only safe on its owning worker thread",
)

#: Every rule ``repro-lint`` can fire, in code order.
LINT_RULES: tuple[LintRule, ...] = (
    RAW_DEVICE,
    UNCHECKED_STENCIL_READ,
    BARE_EXCEPT,
    FLOAT_EQ,
    STRING_DEVICE,
    UNSCHEDULED_STENCIL_WRITE,
    DIRECT_INTERPRETER,
    UNLOCKED_POOL_CAPTURE,
    OFF_SHARD_ENGINE,
)


@dataclasses.dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: LintRule
    message: str

    def render_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule.code} {self.rule.name}: {self.message}"
        )


#: Layers (directories or modules directly under ``repro``) that must
#: reach the device through an engine + ResilientExecutor, never raw.
_ENGINE_ONLY_LAYERS = {
    "sql", "bench", "data", "cpu", "trace", "analysis", "olap.py",
}

#: The only layers allowed to mutate device stencil/depth state
#: directly: the substrate itself and the engines the
#: ContextScheduler multiplexes.  Everything else (service, faults,
#: plan, streams, ...) must go through an engine so switches
#: checkpoint/restore correctly.
_SCHEDULER_LAYERS = {"gpu", "core"}

#: Device methods that write stencil or depth buffer state (the state
#: virtual contexts checkpoint and restore on every switch).
_STENCIL_WRITE_METHODS = {
    "clear",
    "clear_stencil",
    "clear_depth",
    "render_quad",
}

#: Device methods that mutate pipeline state or issue work; reading
#: ``.device.stats`` / ``.device.tracer`` from reporting layers is fine.
_MUTATING_DEVICE_METHODS = {
    "render_quad",
    "render_textured_quad",
    "clear",
    "clear_stencil",
    "clear_depth",
    "begin_query",
    "end_query",
    "abort_query",
    "read_stencil",
    "upload_texels",
    "copy_color_to_texture",
    "bind_texture",
}

#: Attribute names that mark a chain as shared concurrency-sensitive
#: state (the objects the dynamic sanitizer tracks): mutating one of
#: these from a pool thread without a lock is the L208 shape.
_SHARED_STATE_ATTRS = {
    "tracer", "stats", "events", "spans", "counters",
    "device", "engine", "_degraded",
}

#: Container methods that mutate their receiver in place.
_MUTATING_CONTAINER_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
}

#: Names that identify a lock held by a ``with`` block (substring
#: match on the last attribute / name of the context expression).
_LOCK_NAME_HINTS = ("lock", "mutex", "cond", "_mu")

#: Names under which the shard table travels (indexing it from a pool
#: worker is the L209 shape).
_SHARD_TABLE_NAMES = {"shards", "_shards"}

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)"
)


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule names disabled on that line.

    A marker on a comment-only line suppresses the *next* line, so the
    justification can sit above the code it excuses.
    """
    table: dict[int, set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        names = {
            name.strip()
            for name in match.group(1).split(",")
            if name.strip()
        }
        target = number
        if line.lstrip().startswith("#"):
            target = number + 1
        table.setdefault(target, set()).update(names)
    return table


def _repro_layer(path: str) -> str | None:
    """The component directly under the ``repro`` package this file
    belongs to (``"sql"``, ``"olap.py"``, ...), or ``None`` when the
    file is not inside the package."""
    parts = pathlib.PurePath(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and index + 1 < len(parts):
            return parts[index + 1]
    return None


def _device_receiver(target: ast.expr) -> bool:
    """True when ``target`` looks like a device handle (``device`` or
    ``<expr>.device``)."""
    return (
        isinstance(target, ast.Attribute) and target.attr == "device"
    ) or (
        isinstance(target, ast.Name) and target.id == "device"
    )


def _chain_parts(expr: ast.expr) -> tuple[str | None, list[str]]:
    """Decompose an attribute chain into ``(root name, attribute
    names)``; the root is ``None`` when the chain is anchored on a
    call, subscript, or other non-name expression."""
    attrs: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    attrs.reverse()
    if isinstance(node, ast.Name):
        return node.id, attrs
    return None, attrs


def _is_lock_context(expr: ast.expr) -> bool:
    """True when a ``with`` context expression names a lock: its
    terminal name contains ``lock`` / ``mutex`` / ``cond`` / ``_mu``
    (``self._lock``, ``tracker.mutex``, ``cond`` ...), possibly behind
    a call like ``lock.acquire_timeout(...)``."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        terminal = expr.attr
    elif isinstance(expr, ast.Name):
        terminal = expr.id
    else:
        return False
    lowered = terminal.lower()
    return any(hint in lowered for hint in _LOCK_NAME_HINTS)


def _callable_locals(fn: ast.AST) -> set[str]:
    """Parameter and locally-bound names of a function or lambda —
    everything *not* in this set that the body touches is captured
    from the enclosing (submitting) scope."""
    names: set[str] = set()
    args = fn.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
    ):
        names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                names.add(node.name)
    return names


class _Visitor(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        engine_only: bool,
        scheduler_guard: bool = False,
        interpreter_guard: bool = False,
        local_defs: dict[str, ast.AST] | None = None,
    ):
        self.path = path
        self.engine_only = engine_only
        #: True when this layer may not write stencil/depth state (L206).
        self.scheduler_guard = scheduler_guard
        #: True when this layer may not construct the fragment-program
        #: interpreter directly (L207).
        self.interpreter_guard = interpreter_guard
        #: Function definitions in this module by name, for resolving
        #: ``pool.submit(worker)`` to the callable's body (L208/L209).
        self.local_defs = local_defs if local_defs is not None else {}
        self.findings: list[LintFinding] = []
        #: Stack of per-function [saw_read_stencil_node, saw_generation]
        self._functions: list[list] = []

    def _flag(
        self, node: ast.AST, rule: LintRule, message: str
    ) -> None:
        self.findings.append(LintFinding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        ))

    # -- L202: per-function stencil read bookkeeping -------------------

    def _visit_function(self, node) -> None:
        self._functions.append([None, False])
        self.generic_visit(node)
        read_node, checked = self._functions.pop()
        if read_node is not None and not checked:
            self._flag(
                read_node,
                UNCHECKED_STENCIL_READ,
                f"{node.name}() calls read_stencil() without checking "
                "stencil_generation for staleness",
            )

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "stencil_generation" and self._functions:
            self._functions[-1][1] = True
        self.generic_visit(node)

    # -- calls: L201 instantiation/mutation, L202 reads, L205 kwargs ---

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "read_stencil" and self._functions:
                if self._functions[-1][0] is None:
                    self._functions[-1][0] = node
            if self.engine_only:
                self._check_raw_device_call(node, func)
            if (
                self.scheduler_guard
                and func.attr in _STENCIL_WRITE_METHODS
                and _device_receiver(func.value)
            ):
                self._flag(
                    node,
                    UNSCHEDULED_STENCIL_WRITE,
                    f"direct stencil/depth write .{func.attr}() outside "
                    "repro.gpu / repro.core bypasses the context "
                    "scheduler; route through a GpuEngine",
                )
        if (
            self.engine_only
            and isinstance(func, ast.Name)
            and func.id == "Device"
        ):
            self._flag(
                node,
                RAW_DEVICE,
                "Device() constructed outside the engine layer; route "
                "through GpuEngine so ResilientExecutor applies",
            )
        if self.interpreter_guard and (
            (
                isinstance(func, ast.Name)
                and func.id == "ProgramInterpreter"
            )
            or (
                isinstance(func, ast.Attribute)
                and func.attr == "ProgramInterpreter"
            )
        ):
            self._flag(
                node,
                DIRECT_INTERPRETER,
                "ProgramInterpreter() constructed outside repro.gpu; "
                "run programs through the device so the JIT / "
                "interpreter backend selection applies",
            )
        for keyword in node.keywords:
            if keyword.arg == "device" and isinstance(
                keyword.value, ast.Constant
            ) and isinstance(keyword.value.value, str):
                self._flag(
                    keyword.value,
                    STRING_DEVICE,
                    f"device={keyword.value.value!r}; pass "
                    "Device.GPU / Device.CPU / Device.AUTO instead",
                )
        self._check_pool_submit(node)
        self.generic_visit(node)

    # -- L208/L209: callables handed to a thread pool ------------------

    def _check_pool_submit(self, node: ast.Call) -> None:
        """On ``<pool>.submit(fn, ...)``, scan ``fn``'s body for
        unlocked mutation of captured shared state (L208) and
        off-shard access (L209)."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
            return
        receiver = func.value
        terminal = (
            receiver.attr if isinstance(receiver, ast.Attribute)
            else receiver.id if isinstance(receiver, ast.Name)
            else ""
        ).lower()
        if "pool" not in terminal and "executor" not in terminal:
            return
        if not node.args:
            return
        target = node.args[0]
        fn: ast.AST | None = None
        bound = False
        if isinstance(target, ast.Lambda):
            fn = target
        elif isinstance(target, ast.Name):
            fn = self.local_defs.get(target.id)
        elif isinstance(target, ast.Attribute):
            # submit(self._worker, ...): a bound method whose receiver
            # is the shared instance, not a per-task argument.
            fn = self.local_defs.get(target.attr)
            bound = True
        if fn is None:
            return
        label = getattr(fn, "name", "<lambda>")
        local = _callable_locals(fn)
        if bound and fn.args.args:
            local.discard(fn.args.args[0].arg)
        if isinstance(fn, ast.Lambda):
            self._check_pool_expr(fn.body, label, local, locked=False)
        else:
            self._walk_pool_body(fn.body, label, local, locked=False)

    def _walk_pool_body(
        self, stmts, label: str, local: set[str], locked: bool
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                held = locked or any(
                    _is_lock_context(item.context_expr)
                    for item in stmt.items
                )
                self._walk_pool_body(stmt.body, label, local, held)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._check_pool_stmt(stmt, label, local, locked)
            for field, value in ast.iter_fields(stmt):
                if not (isinstance(value, list) and value):
                    continue
                if isinstance(value[0], ast.stmt):
                    self._walk_pool_body(value, label, local, locked)
                elif isinstance(value[0], ast.ExceptHandler):
                    for handler in value:
                        self._walk_pool_body(
                            handler.body, label, local, locked
                        )

    def _check_pool_stmt(
        self, stmt, label: str, local: set[str], locked: bool
    ) -> None:
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    target = target.value
                if isinstance(target, ast.Attribute):
                    self._check_pool_store(target, label, local, locked)
        # Direct child expressions only — nested statement blocks are
        # walked by _walk_pool_body, so headers (If.test, For.iter)
        # get checked here without double-visiting bodies.
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                self._check_pool_expr(value, label, local, locked)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        self._check_pool_expr(item, label, local, locked)

    def _check_pool_expr(
        self, expr: ast.expr, label: str, local: set[str], locked: bool
    ) -> None:
        for node in ast.walk(expr):
            if (
                not locked
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_CONTAINER_METHODS
            ):
                root, attrs = _chain_parts(node.func.value)
                if self._captured_shared(root, attrs, local):
                    self._flag(
                        node,
                        UNLOCKED_POOL_CAPTURE,
                        f"{label}() runs on a pool thread and calls "
                        f".{node.func.attr}() on captured shared state "
                        "without holding a lock",
                    )
            if isinstance(node, ast.expr):
                self._check_off_shard(node, label, local)

    def _check_pool_store(
        self, target: ast.Attribute, label: str, local: set[str],
        locked: bool,
    ) -> None:
        if locked:
            return
        root, attrs = _chain_parts(target)
        if self._captured_shared(root, attrs, local):
            self._flag(
                target,
                UNLOCKED_POOL_CAPTURE,
                f"{label}() runs on a pool thread and writes "
                f"{'.'.join([root, *attrs])} — captured shared state — "
                "without holding a lock",
            )

    @staticmethod
    def _captured_shared(
        root: str | None, attrs: list[str], local: set[str]
    ) -> bool:
        """A chain is a shared-state hazard when it is rooted at a
        *captured* name (not a parameter or local of the submitted
        callable) and mentions a concurrency-sensitive attribute."""
        if root is None or root in local:
            return False
        sensitive = root in _SHARED_STATE_ATTRS or bool(
            set(attrs) & _SHARED_STATE_ATTRS
        )
        return sensitive

    def _check_off_shard(
        self, node: ast.expr, label: str, local: set[str]
    ) -> None:
        if isinstance(node, ast.Subscript):
            value = node.value
            terminal = (
                value.attr if isinstance(value, ast.Attribute)
                else value.id if isinstance(value, ast.Name)
                else ""
            )
            if terminal in _SHARD_TABLE_NAMES:
                self._flag(
                    node,
                    OFF_SHARD_ENGINE,
                    f"{label}() indexes the shard table from a pool "
                    "thread; a worker must only touch the shard it "
                    "was given",
                )
        elif isinstance(node, ast.Attribute) and node.attr == "parent":
            self._flag(
                node,
                OFF_SHARD_ENGINE,
                f"{label}() reaches the parent engine via .parent "
                "from a pool thread; per-shard work must stay on "
                "its own shard's state",
            )

    def _check_raw_device_call(
        self, node: ast.Call, func: ast.Attribute
    ) -> None:
        if func.attr not in _MUTATING_DEVICE_METHODS:
            return
        if _device_receiver(func.value):
            self._flag(
                node,
                RAW_DEVICE,
                f"raw device call .{func.attr}() outside the engine "
                "layer bypasses ResilientExecutor retry/fallback",
            )

    # -- L206: generation counters belong to the scheduler -------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.scheduler_guard:
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in (
                        "stencil_generation", "depth_generation"
                    )
                    and _device_receiver(target.value)
                ):
                    self._flag(
                        node,
                        UNSCHEDULED_STENCIL_WRITE,
                        f"assignment to device.{target.attr} outside "
                        "repro.gpu / repro.core; only the context "
                        "scheduler may set generation counters",
                    )
        self.generic_visit(node)

    # -- L203: blanket exception handlers ------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(
                node,
                BARE_EXCEPT,
                "bare except swallows GpuError (and KeyboardInterrupt)",
            )
        elif (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
            and not any(
                isinstance(child, ast.Raise)
                for child in ast.walk(node)
            )
        ):
            self._flag(
                node,
                BARE_EXCEPT,
                f"except {node.type.id} without re-raise swallows "
                "GpuError, hiding injected faults",
            )
        self.generic_visit(node)

    # -- L204: float equality ------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op in node.ops:
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                for operand in operands
            ):
                self._flag(
                    node,
                    FLOAT_EQ,
                    "float equality on encoded values; compare the "
                    "integer encoding or use a tolerance",
                )
                break
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>"
) -> list[LintFinding]:
    """Lint one module's source text."""
    layer = _repro_layer(path)
    tree = ast.parse(source, filename=path)
    local_defs: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # First definition wins on name collisions; good enough
            # for resolving pool.submit(worker) to its body.
            local_defs.setdefault(node.name, node)
    visitor = _Visitor(
        path,
        engine_only=layer in _ENGINE_ONLY_LAYERS,
        scheduler_guard=(
            layer is not None and layer not in _SCHEDULER_LAYERS
        ),
        interpreter_guard=layer is not None and layer != "gpu",
        local_defs=local_defs,
    )
    visitor.visit(tree)
    disabled = _suppressions(source)
    return sorted(
        (
            finding
            for finding in visitor.findings
            if finding.rule.name not in disabled.get(finding.line, ())
        ),
        key=lambda finding: (finding.line, finding.col),
    )


def lint_paths(paths: list[str]) -> list[LintFinding]:
    """Lint every ``*.py`` file under ``paths`` (files or directories)."""
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: list[LintFinding] = []
    for file in files:
        findings.extend(
            lint_source(file.read_text(), path=str(file))
        )
    return findings

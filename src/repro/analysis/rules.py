"""The hazard catalog: every invariant the schedule verifier enforces.

Each :class:`Rule` names one way a compiled
:class:`~repro.plan.PassSchedule` can violate the substrate's unwritten
contracts (the invariants the paper's routines rely on but the hardware
never checks).  The abstract interpreter
(:mod:`repro.analysis.interpreter`) fires these rules; the catalog also
feeds ``docs/ANALYSIS.md`` and the diagnostics' typed codes.
"""

from __future__ import annotations

import dataclasses

from .diagnostics import Diagnostic, Severity, Span


@dataclasses.dataclass(frozen=True)
class Rule:
    """One verifier hazard class."""

    code: str
    name: str
    summary: str

    def diagnostic(
        self,
        span: Span,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            name=self.name,
            severity=severity,
            message=message,
            span=span,
        )


#: Routine 4.1 / figure 3-5 invariant: a depth-testing quad is only
#: meaningful while the depth buffer holds its *own* attribute's values.
STALE_DEPTH = Rule(
    "H101",
    "stale-depth",
    "a compare/range quad reads the depth buffer while it holds a "
    "different attribute's values",
)

#: The depth buffer starts undefined: a compare/range quad before any
#: CopyDepthPass tests garbage.
MISSING_COPY = Rule(
    "H102",
    "missing-copy",
    "a compare/range quad reads depth never populated by a "
    "copy-to-depth pass",
)

#: The EvalCNF {0,1,2} protocol (routine 4.3): clause cleanups must
#: ping-pong in order, and DNF arm/invalidate/accept/normalize passes
#: must follow the two-bit-plane discipline.
CNF_PROTOCOL = Rule(
    "H103",
    "cnf-protocol",
    "a stencil bookkeeping pass violates the EvalCNF/EvalDNF "
    "three-value {0,1,2} stencil protocol",
)

#: Every begun occlusion query must be harvested exactly once; a leaked
#: query wedges the device (queries do not nest) and loses its count.
OCCLUSION_LEAK = Rule(
    "H104",
    "occlusion-leak",
    "occlusion queries are begun but never harvested",
)

#: Harvesting more results than queries begun means some count is read
#: twice (or a query that never ran is waited on forever).
DOUBLE_HARVEST = Rule(
    "H105",
    "double-harvest",
    "a harvest retrieves more occlusion results than queries begun",
)

#: A cached result keyed on fewer texture generations than the
#: schedule reads survives a texel update it should not.
UNDER_KEYED_CACHE = Rule(
    "H106",
    "under-keyed-cache",
    "the schedule's cache key does not cover every texture "
    "generation it reads",
)

#: Concurrency invariant (the virtual-context tentpole): when two
#: sessions interleave operations on one physical device *without*
#: checkpoint/restore contexts, a foreign op can overwrite stencil or
#: depth state a session still depends on — a stale selection at best,
#: a silently wrong answer at worst.  Fired by
#: :func:`repro.analysis.verify_interleaving`; never fires when the
#: interleaving runs under the context scheduler (``virtualized=True``).
CONTEXT_ALIASING = Rule(
    "H107",
    "context-aliasing",
    "an interleaved op from another session overwrites stencil/depth "
    "state this session still depends on (unvirtualized device sharing)",
)

#: Sharding invariant (the multi-device tentpole): every shard device
#: must own a *disjoint* virtual-context cid band, so no stencil/depth
#: generation minted on one shard can equal a generation minted on
#: another shard (or the host).  Overlapping bands would let one
#: shard's plan-cache entries or selection snapshots validate against
#: another shard's buffers — a silently wrong combined answer.  Fired
#: by :func:`repro.analysis.verify_shard_fanout`.
SHARD_ALIASING = Rule(
    "H108",
    "shard-aliasing",
    "a shard's generation band overlaps another shard's (or the "
    "host's), so cross-shard stencil/depth generations can alias",
)

#: Dynamic-sanitizer invariant (the race tentpole): every pair of
#: accesses to one piece of shared substrate state (stencil/depth
#: buffers, textures, occlusion queries, plan caches, tracer spans,
#: fault/service counters) where at least one is a write must be
#: ordered by a happens-before edge — thread-pool submit/join, lock
#: acquire/release, or a context checkpoint hand-off.  An unordered
#: write-write or read-write pair is a plain Python data race: the
#: losing access silently corrupts counts, traces, or buffer
#: generations.  Fired by :func:`repro.analysis.race.race_report` from
#: events a :class:`~repro.analysis.events.RaceRecorder` collected.
DEVICE_RACE = Rule(
    "H109",
    "device-race",
    "two threads access the same device/tracer/stats state without a "
    "happens-before edge and at least one access is a write",
)

#: Sharded-combine invariant: shard results are folded by the host
#: combiners in :data:`repro.shard.combiners.COMBINER_SPECS`.  A
#: combiner declared order-insensitive may be folded in pool-completion
#: order, so it must be commutative and associative; one that is
#: actually order-sensitive (checked symbolically on the spec's sample
#: inputs) would make the combined answer depend on thread timing.
#: Fired by :func:`repro.analysis.race.verify_combiners`.
ORDER_SENSITIVE_COMBINER = Rule(
    "H110",
    "order-sensitive-combiner",
    "a shard combiner declared order-insensitive produces different "
    "results under permuted or re-associated shard orders",
)

#: Everything the verifier can fire, in code order.
HAZARD_RULES: tuple[Rule, ...] = (
    STALE_DEPTH,
    MISSING_COPY,
    CNF_PROTOCOL,
    OCCLUSION_LEAK,
    DOUBLE_HARVEST,
    UNDER_KEYED_CACHE,
    CONTEXT_ALIASING,
    SHARD_ALIASING,
    DEVICE_RACE,
    ORDER_SENSITIVE_COMBINER,
)

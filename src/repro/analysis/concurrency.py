"""Interleaving verifier: can concurrent sessions alias device state?

One physical device, many sessions: every engine op compiles to a
:class:`~repro.plan.PassSchedule` that runs *atomically* (the query
service serializes execution), but between ops the scheduler may hand
the device to another session.  Two pieces of state outlive an op and
make that dangerous on a raw device:

* **stencil** — a selection's mask stays in the stencil buffer until
  :class:`~repro.core.engine.Selection` reads the ids back, which can be
  arbitrarily later; it is live from the op that wrote it to the end of
  the interleaving;
* **depth** — the depth cache lets a session's *next* op elide its
  copy-to-depth because the buffer still holds the column, so depth is
  live from one of a session's ops to that session's next op.

:func:`verify_interleaving` walks an interleaved execution (a sequence
of ``(session, schedule)`` steps, one per atomic op, in device order)
and fires :data:`~repro.analysis.rules.CONTEXT_ALIASING` (H107)
wherever a foreign op writes a buffer inside another session's liveness
window.  Under the virtual-context scheduler
(:mod:`repro.gpu.context`, ``virtualized=True``) every switch
checkpoints the outgoing session's stencil/depth and restores the
incoming one's, so foreign writes land in a different context's state
*by construction*: the same walk proves the report clean for every
possible interleaving, which is the static half of the tentpole's
isolation guarantee (the generation counters are the runtime half).

Occlusion queries need no cross-op reasoning here: they cannot span a
schedule boundary (H104/H105 reject leaks within one schedule, and
schedules are the atomic unit of interleaving).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..errors import PlanVerificationError
from ..plan.passes import DEPTH, STENCIL, PassSchedule
from .diagnostics import Diagnostic, Span
from .rules import CONTEXT_ALIASING

#: The two framebuffer resources that carry state across op boundaries.
_BUFFERS: frozenset[str] = frozenset({DEPTH, STENCIL})


@dataclasses.dataclass(frozen=True)
class InterleavedOp:
    """One atomic step of an interleaved execution."""

    #: Session that issued the op.
    session: str
    #: The op's compiled schedule.
    schedule: PassSchedule

    def describe(self) -> str:
        return (
            f"{self.session}:{self.schedule.op} ON {self.schedule.table}"
        )


@dataclasses.dataclass
class InterleavingReport:
    """Verdict for one interleaved execution.

    Diagnostics' spans index into :attr:`ops` (the step that performed
    the foreign write), not into any single schedule's nodes.
    """

    ops: list[InterleavedOp]
    #: True when the execution runs under the context scheduler
    #: (checkpoint/restore on every switch).
    virtualized: bool
    diagnostics: list[Diagnostic]

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def errors(self) -> list[Diagnostic]:
        return list(self.diagnostics)

    def render_text(self) -> str:
        mode = "virtualized" if self.virtualized else "raw device"
        verdict = "ok" if self.ok else "REJECTED"
        lines = [
            f"interleaving of {len(self.ops)} ops [{mode}] [{verdict}]"
        ]
        for index, op in enumerate(self.ops):
            lines.append(f"  {index}: {op.describe()}")
        if not self.diagnostics:
            lines.append("  (no aliasing)")
        for diagnostic in self.diagnostics:
            lines.append(f"  ! {diagnostic.render_text()}")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.ok:
            return
        raise PlanVerificationError(
            f"interleaving of {len(self.ops)} ops aliases device "
            "state:\n" + self.render_text(),
            report=self,
        )


def _writes_buffer(schedule: PassSchedule, buffer: str) -> bool:
    return any(buffer in node.writes() for node in schedule.nodes)


def _liveness_end(
    ops: Sequence[InterleavedOp], start: int, buffer: str
) -> int:
    """Exclusive end of ``buffer``'s liveness window opened at ``start``.

    Depth is live until the owning session's next op (depth-cache
    reuse); stencil is live to the end of the interleaving (selection
    masks are read back after the ops finish).
    """
    if buffer == STENCIL:
        return len(ops)
    session = ops[start].session
    for index in range(start + 1, len(ops)):
        if ops[index].session == session:
            return index
    return len(ops)


def verify_interleaving(
    steps: Sequence[tuple[str, PassSchedule]],
    virtualized: bool = False,
) -> InterleavingReport:
    """Check one interleaved execution for cross-session aliasing.

    ``steps`` lists the atomic ops in the order the device ran them,
    each tagged with its session.  ``virtualized=True`` models the
    context scheduler: every foreign write is checkpoint-isolated, so
    the report is provably clean; ``False`` models raw device sharing
    and fires H107 for every clobbered liveness window (first foreign
    writer per window).
    """
    ops = [
        InterleavedOp(session=session, schedule=schedule)
        for session, schedule in steps
    ]
    diagnostics: list[Diagnostic] = []
    if not virtualized:
        for start, op in enumerate(ops):
            written = {
                buffer
                for buffer in _BUFFERS
                if _writes_buffer(op.schedule, buffer)
            }
            windows = {
                buffer: _liveness_end(ops, start, buffer)
                for buffer in written
            }
            #: Buffers op ``start`` left live and nobody clobbered yet.
            live = set(written)
            #: clobbering op index -> buffers it overwrote.
            clobbered: dict[int, list[str]] = {}
            for index in range(start + 1, len(ops)):
                live = {
                    buffer for buffer in live if windows[buffer] > index
                }
                if not live:
                    break
                other = ops[index]
                if other.session == op.session:
                    # A session may overwrite its own state.
                    live -= {
                        buffer
                        for buffer in live
                        if _writes_buffer(other.schedule, buffer)
                    }
                    continue
                hit = sorted(
                    buffer
                    for buffer in live
                    if _writes_buffer(other.schedule, buffer)
                )
                if hit:
                    clobbered[index] = hit
                    live -= set(hit)
            for index, buffers in sorted(clobbered.items()):
                other = ops[index]
                diagnostics.append(CONTEXT_ALIASING.diagnostic(
                    Span.at(index),
                    f"op {index} ({other.describe()}) writes "
                    f"{' and '.join(buffers)} while op {start} "
                    f"({op.describe()}) still depends on it; run the "
                    "sessions under the context scheduler (virtual "
                    "contexts) or drop the carried state",
                ))
    return InterleavingReport(
        ops=ops, virtualized=virtualized, diagnostics=diagnostics
    )

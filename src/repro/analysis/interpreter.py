"""The abstract schedule interpreter: verify before the device runs.

:func:`verify_schedule` walks a compiled
:class:`~repro.plan.PassSchedule` node by node, updating the symbolic
:class:`~repro.analysis.state.AbstractState` and firing the hazard
rules of :mod:`repro.analysis.rules` whenever a transition would be
unsound on real hardware.  The interpretation is conservative: it never
executes a pass, so a clean report means the schedule cannot corrupt
results through the invariants modeled here — stale depth, the EvalCNF
stencil protocol, occlusion-query balance, and cache-key coverage.
"""

from __future__ import annotations

from ..plan.passes import (
    CompareQuadPass,
    CopyDepthPass,
    OcclusionCountPass,
    PassNode,
    PassSchedule,
    StencilCNFPass,
)
from .diagnostics import (
    Diagnostic,
    Severity,
    Span,
    VerificationReport,
)
from .rules import (
    CNF_PROTOCOL,
    DOUBLE_HARVEST,
    MISSING_COPY,
    OCCLUSION_LEAK,
    STALE_DEPTH,
    UNDER_KEYED_CACHE,
)
from .state import AbstractState


def verify_schedule(schedule: PassSchedule) -> VerificationReport:
    """Abstractly interpret ``schedule`` and report every hazard."""
    state = AbstractState()
    diagnostics: list[Diagnostic] = []
    for index, node in enumerate(schedule.nodes):
        _step(node, index, state, diagnostics)
    _finish(schedule, state, diagnostics)
    return VerificationReport(
        schedule=schedule, diagnostics=diagnostics
    )


def assert_verified(schedule: PassSchedule) -> VerificationReport:
    """Verify ``schedule``; raise
    :class:`~repro.errors.PlanVerificationError` on any hazard."""
    report = verify_schedule(schedule)
    report.raise_if_failed()
    return report


# -- transfer functions ------------------------------------------------------


def _step(
    node: PassNode,
    index: int,
    state: AbstractState,
    diagnostics: list[Diagnostic],
) -> None:
    for resource in node.reads():
        if resource.startswith("texture:"):
            state.columns_read.add(resource.split(":", 1)[1])
    if isinstance(node, CopyDepthPass):
        state.note_copy(node.column)
    elif isinstance(node, CompareQuadPass):
        _step_quad(node, index, state, diagnostics)
    elif isinstance(node, StencilCNFPass):
        _step_stencil(node, index, state, diagnostics)
    elif isinstance(node, OcclusionCountPass):
        _step_harvest(node, index, state, diagnostics)


def _step_quad(
    node: CompareQuadPass,
    index: int,
    state: AbstractState,
    diagnostics: list[Diagnostic],
) -> None:
    if node.reads_depth:
        if state.depth_holds is None:
            diagnostics.append(MISSING_COPY.diagnostic(
                Span.at(index),
                f"{node.kind} quad on {node.column!r} tests the depth "
                "buffer, but no copy-to-depth pass ever populated it",
            ))
        elif state.depth_holds != node.column:
            diagnostics.append(STALE_DEPTH.diagnostic(
                Span.at(index),
                f"{node.kind} quad on {node.column!r} tests the depth "
                f"buffer while it holds {state.depth_holds!r}",
            ))
    if node.counted:
        state.begin_query(index)


def _step_stencil(
    node: StencilCNFPass,
    index: int,
    state: AbstractState,
    diagnostics: list[Diagnostic],
) -> None:
    label = node.label
    if label == "cnf-cleanup":
        _step_cnf_cleanup(node, index, state, diagnostics)
    elif label == "dnf-arm":
        _step_dnf_arm(node, index, state, diagnostics)
    elif label == "dnf-invalidate":
        if state.dnf_armed != node.clause or state.dnf_accepted:
            diagnostics.append(CNF_PROTOCOL.diagnostic(
                Span.at(index),
                f"dnf-invalidate for clause {node.clause} while "
                f"clause {state.dnf_armed} is armed",
            ))
    elif label == "dnf-accept":
        _step_dnf_accept(node, index, state, diagnostics)
    elif label == "dnf-normalize":
        _step_dnf_normalize(index, state, diagnostics)
    else:
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at(index),
            f"unknown stencil bookkeeping label {label!r}",
            severity=Severity.WARNING,
        ))
    if node.counted:
        state.begin_query(index)


def _step_cnf_cleanup(
    node: StencilCNFPass,
    index: int,
    state: AbstractState,
    diagnostics: list[Diagnostic],
) -> None:
    clause = node.clause
    if clause == 1:
        # A fresh EvalCNF run: the stencil was just cleared to 1.
        state.cnf_clause = 1
        return
    expected = (state.cnf_clause or 0) + 1
    if clause != expected:
        valid = state.expected_cnf_valid()
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at(index),
            f"cnf-cleanup for clause {clause} after clause "
            f"{state.cnf_clause}; the {{0,1,2}} ping-pong expects "
            f"clause {expected} (valid stencil value {valid})",
        ))
        state.cnf_clause = clause if clause is not None else None
        return
    state.cnf_clause = clause


def _step_dnf_arm(
    node: StencilCNFPass,
    index: int,
    state: AbstractState,
    diagnostics: list[Diagnostic],
) -> None:
    clause = node.clause
    if state.dnf_armed is not None and not state.dnf_accepted:
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at(index),
            f"dnf-arm for clause {clause} while clause "
            f"{state.dnf_armed} was never accepted",
        ))
    if clause == 1:
        state.dnf_last_clause = 0
        state.dnf_normalizes = 0
    elif clause != state.dnf_last_clause + 1:
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at(index),
            f"dnf-arm for clause {clause} after clause "
            f"{state.dnf_last_clause}",
        ))
    state.dnf_armed = clause
    state.dnf_accepted = False


def _step_dnf_accept(
    node: StencilCNFPass,
    index: int,
    state: AbstractState,
    diagnostics: list[Diagnostic],
) -> None:
    if state.dnf_armed != node.clause:
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at(index),
            f"dnf-accept for clause {node.clause} while clause "
            f"{state.dnf_armed} is armed",
        ))
    elif state.dnf_accepted:
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at(index),
            f"clause {node.clause} accepted twice: the accept-bit "
            "INVERT would un-accept already-counted records",
        ))
    state.dnf_accepted = True
    if node.clause is not None:
        state.dnf_last_clause = node.clause


def _step_dnf_normalize(
    index: int,
    state: AbstractState,
    diagnostics: list[Diagnostic],
) -> None:
    if state.dnf_armed is not None and not state.dnf_accepted:
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at(index),
            f"dnf-normalize while clause {state.dnf_armed} was "
            "never accepted",
        ))
    state.dnf_normalizes += 1
    if state.dnf_normalizes > 2:
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at(index),
            "more than the protocol's two normalization passes",
        ))
    if state.dnf_normalizes >= 2:
        # The run is fully normalized; a later dnf-arm starts fresh.
        state.dnf_armed = None
        state.dnf_accepted = False


def _step_harvest(
    node: OcclusionCountPass,
    index: int,
    state: AbstractState,
    diagnostics: list[Diagnostic],
) -> None:
    pending = len(state.pending_queries)
    if node.queries > pending:
        diagnostics.append(DOUBLE_HARVEST.diagnostic(
            Span.at(index),
            f"harvest of {node.queries} occlusion "
            f"result{'s' if node.queries != 1 else ''} with only "
            f"{pending} quer{'ies' if pending != 1 else 'y'} begun",
        ))
    taken = min(node.queries, pending)
    del state.pending_queries[:taken]
    state.harvested += node.queries


def _finish(
    schedule: PassSchedule,
    state: AbstractState,
    diagnostics: list[Diagnostic],
) -> None:
    if state.pending_queries:
        leaked = ", ".join(str(i) for i in state.pending_queries)
        diagnostics.append(OCCLUSION_LEAK.diagnostic(
            Span.at_end(len(schedule.nodes)),
            f"{len(state.pending_queries)} occlusion "
            f"quer{'ies' if len(state.pending_queries) != 1 else 'y'} "
            f"begun at pass{'es' if len(state.pending_queries) != 1 else ''} "
            f"{leaked} never harvested",
        ))
    if state.dnf_armed is not None and not state.dnf_accepted:
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at_end(len(schedule.nodes)),
            f"schedule ends with DNF clause {state.dnf_armed} armed "
            "but never accepted",
        ))
    if state.dnf_normalizes == 1:
        diagnostics.append(CNF_PROTOCOL.diagnostic(
            Span.at_end(len(schedule.nodes)),
            "schedule ends after one dnf-normalize pass; the "
            "protocol requires two",
        ))
    if schedule.cache_key is not None:
        missing = sorted(state.columns_read - set(schedule.cache_key))
        if missing:
            diagnostics.append(UNDER_KEYED_CACHE.diagnostic(
                Span.at_end(len(schedule.nodes)),
                "cache key "
                f"{tuple(schedule.cache_key)!r} does not cover read "
                f"column{'s' if len(missing) != 1 else ''} "
                + ", ".join(repr(name) for name in missing),
            ))

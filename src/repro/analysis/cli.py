"""The ``repro-lint`` command-line gate.

Runs the :mod:`repro.analysis.lint` rules over the given paths
(default: ``src/repro``) and exits non-zero on any finding, so CI can
use it as a blocking job with no third-party dependencies.

``--format json`` emits machine-readable findings; ``--baseline FILE``
filters out known findings recorded with ``--write-baseline FILE``, so
the gate can be adopted on a codebase with pre-existing debt and still
block every *new* finding.
"""

from __future__ import annotations

import argparse
import collections
import json
import pathlib
import sys

from .lint import LINT_RULES, LintFinding, lint_paths

#: Baseline file schema version (bumped on fingerprint changes).
BASELINE_VERSION = 1


def _fingerprint(finding: LintFinding) -> dict:
    """The location-insensitive identity of a finding.

    Line and column are deliberately excluded: edits above a known
    finding must not resurrect it, and duplicated identical findings
    in one file collapse to one baseline entry.
    """
    return {
        "path": finding.path,
        "code": finding.rule.code,
        "message": finding.message,
    }


def _finding_json(finding: LintFinding) -> dict:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "code": finding.rule.code,
        "name": finding.rule.name,
        "message": finding.message,
    }


def _load_baseline(path: str) -> list[dict]:
    raw = json.loads(pathlib.Path(path).read_text())
    if raw.get("version") != BASELINE_VERSION:
        raise SystemExit(
            f"repro-lint: baseline {path} has version "
            f"{raw.get('version')!r}, expected {BASELINE_VERSION}; "
            "regenerate with --write-baseline"
        )
    return raw.get("findings", [])


def _apply_baseline(
    findings: list[LintFinding], baseline: list[dict]
) -> tuple[list[LintFinding], int]:
    """Split findings into (new, suppressed-count) against a baseline.

    Fingerprints carry multiplicity: a baseline recording one L204 in
    a file excuses exactly one — a second identical finding added
    later is new and still fails the gate.
    """
    known = collections.Counter(
        (entry["path"], entry["code"], entry["message"])
        for entry in baseline
    )
    fresh: list[LintFinding] = []
    for finding in findings:
        key = (finding.path, finding.rule.code, finding.message)
        if known.get(key, 0) > 0:
            known[key] -= 1
        else:
            fresh.append(finding)
    return fresh, len(findings) - len(fresh)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Lint the repro codebase for its recurring bug shapes "
            "(raw device calls, unchecked stencil reads, swallowed "
            "GpuError, float equality on encoded values, string "
            "device forms, unlocked pool captures, off-shard state)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "suppress findings recorded in FILE (see --write-baseline); "
            "only new findings fail the gate"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record all current findings to FILE and exit 0",
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in LINT_RULES:
            print(f"{rule.code} {rule.name}: {rule.summary}")
        return 0
    findings = lint_paths(options.paths)
    if options.write_baseline:
        payload = {
            "version": BASELINE_VERSION,
            "findings": [_fingerprint(f) for f in findings],
        }
        pathlib.Path(options.write_baseline).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        print(
            f"repro-lint: wrote baseline with {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} to "
            f"{options.write_baseline}"
        )
        return 0
    suppressed = 0
    if options.baseline:
        findings, suppressed = _apply_baseline(
            findings, _load_baseline(options.baseline)
        )
    if options.format == "json":
        print(json.dumps(
            {
                "findings": [_finding_json(f) for f in findings],
                "count": len(findings),
                "suppressed": suppressed,
            },
            indent=2,
        ))
        return 1 if findings else 0
    for finding in findings:
        print(finding.render_text())
    if findings:
        print(
            f"repro-lint: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''}"
            + (f" ({suppressed} baselined)" if suppressed else "")
        )
        return 1
    message = "repro-lint: clean"
    if suppressed:
        message += f" ({suppressed} baselined)"
    print(message)
    return 0


if __name__ == "__main__":
    sys.exit(main())

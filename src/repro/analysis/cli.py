"""The ``repro-lint`` command-line gate.

Runs the :mod:`repro.analysis.lint` rules over the given paths
(default: ``src/repro``) and exits non-zero on any finding, so CI can
use it as a blocking job with no third-party dependencies.
"""

from __future__ import annotations

import argparse
import sys

from .lint import LINT_RULES, lint_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Lint the repro codebase for its recurring bug shapes "
            "(raw device calls, unchecked stencil reads, swallowed "
            "GpuError, float equality on encoded values, string "
            "device forms)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in LINT_RULES:
            print(f"{rule.code} {rule.name}: {rule.summary}")
        return 0
    findings = lint_paths(options.paths)
    for finding in findings:
        print(finding.render_text())
    if findings:
        print(
            f"repro-lint: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''}"
        )
        return 1
    print("repro-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Static analysis: schedule verification and the ``repro-lint`` rules.

Two complementary correctness tools live here, both producing typed,
span-carrying diagnostics (:mod:`repro.analysis.diagnostics`):

* **Schedule verifier** (:func:`verify_schedule`) — abstractly
  interprets a compiled :class:`~repro.plan.PassSchedule` over symbolic
  depth / stencil / occlusion-query state and rejects hazards before
  any device call: stale depth reuse, EvalCNF {0,1,2} stencil-protocol
  violations, comparisons against depth never populated by a copy,
  occlusion queries leaked or double-harvested, and cache keys that do
  not cover every texture generation the schedule reads.  Wired into
  ``GpuEngine(debug=True)`` and ``Database.explain(sql, verify=True)``.

* **Codebase linter** (:func:`lint_paths`, the ``repro-lint`` CLI) —
  AST rules over the repository catching our recurring bug shapes: raw
  :class:`~repro.gpu.pipeline.Device` calls from layers that must route
  through :class:`~repro.faults.ResilientExecutor`-wrapped engines,
  stencil readbacks without a ``stencil_generation`` staleness check,
  bare ``except`` clauses that would swallow
  :class:`~repro.errors.GpuError`, float equality on fixed-point /
  bias-encoded values, the removed string device form, and direct
  stencil/depth writes outside the context scheduler's layers.

* **Interleaving verifier** (:func:`verify_interleaving`) — walks an
  interleaved multi-session execution (one step per atomic op) and
  fires H107 ``context-aliasing`` wherever a foreign op clobbers
  stencil/depth state another session still depends on; under
  ``virtualized=True`` (the :mod:`repro.gpu.context` scheduler) the
  same walk proves every interleaving clean — the static half of the
  query service's isolation guarantee.

* **Shard fan-out verifier** (:func:`verify_shard_fanout`) — checks a
  shard pool's generation-band layout (host plus one band per shard)
  and fires H108 ``shard-aliasing`` on any overlap or degenerate band;
  the static half of :mod:`repro.shard`'s guarantee that per-shard
  schedules never read another shard's generation band.

* **Concurrency sanitizer** (:mod:`repro.analysis.race`) — a dynamic
  vector-clock race detector over the :mod:`repro.sanitize` hook
  stream (H109 ``device-race``: unordered write-write / read-write
  pairs on shared device, tracer, cache, or counter state) plus a
  symbolic order-sensitivity check over the shard combiner table
  (H110 ``order-sensitive-combiner``).  Armed by ``REPRO_SAN=1``,
  ``GpuEngine(sanitize=True)``, or a scoped :func:`use_sanitizer`
  window.
"""

from .concurrency import (
    InterleavedOp,
    InterleavingReport,
    verify_interleaving,
)
from .diagnostics import (
    Diagnostic,
    Severity,
    Span,
    VerificationReport,
)
from .events import AccessEvent, AccessKind, RacePair, RaceRecorder
from .interpreter import assert_verified, verify_schedule
from .lint import (
    LINT_RULES,
    LintFinding,
    LintRule,
    lint_paths,
    lint_source,
)
from .race import (
    CombinerReport,
    RaceReport,
    assert_race_free,
    current_recorder,
    ensure_installed,
    race_report,
    use_sanitizer,
    verify_combiners,
)
from .rules import HAZARD_RULES, Rule
from .sharding import (
    ShardBand,
    ShardFanoutReport,
    verify_shard_fanout,
)

__all__ = [
    "AccessEvent",
    "AccessKind",
    "CombinerReport",
    "Diagnostic",
    "HAZARD_RULES",
    "InterleavedOp",
    "InterleavingReport",
    "LINT_RULES",
    "LintFinding",
    "LintRule",
    "RacePair",
    "RaceRecorder",
    "RaceReport",
    "Rule",
    "Severity",
    "Span",
    "ShardBand",
    "ShardFanoutReport",
    "VerificationReport",
    "assert_race_free",
    "assert_verified",
    "current_recorder",
    "ensure_installed",
    "lint_paths",
    "lint_source",
    "race_report",
    "use_sanitizer",
    "verify_combiners",
    "verify_interleaving",
    "verify_schedule",
    "verify_shard_fanout",
]

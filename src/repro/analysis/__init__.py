"""Static analysis: schedule verification and the ``repro-lint`` rules.

Two complementary correctness tools live here, both producing typed,
span-carrying diagnostics (:mod:`repro.analysis.diagnostics`):

* **Schedule verifier** (:func:`verify_schedule`) — abstractly
  interprets a compiled :class:`~repro.plan.PassSchedule` over symbolic
  depth / stencil / occlusion-query state and rejects hazards before
  any device call: stale depth reuse, EvalCNF {0,1,2} stencil-protocol
  violations, comparisons against depth never populated by a copy,
  occlusion queries leaked or double-harvested, and cache keys that do
  not cover every texture generation the schedule reads.  Wired into
  ``GpuEngine(debug=True)`` and ``Database.explain(sql, verify=True)``.

* **Codebase linter** (:func:`lint_paths`, the ``repro-lint`` CLI) —
  AST rules over the repository catching our recurring bug shapes: raw
  :class:`~repro.gpu.pipeline.Device` calls from layers that must route
  through :class:`~repro.faults.ResilientExecutor`-wrapped engines,
  stencil readbacks without a ``stencil_generation`` staleness check,
  bare ``except`` clauses that would swallow
  :class:`~repro.errors.GpuError`, float equality on fixed-point /
  bias-encoded values, and the deprecated string device form.
"""

from .diagnostics import (
    Diagnostic,
    Severity,
    Span,
    VerificationReport,
)
from .interpreter import assert_verified, verify_schedule
from .lint import (
    LINT_RULES,
    LintFinding,
    LintRule,
    lint_paths,
    lint_source,
)
from .rules import HAZARD_RULES, Rule

__all__ = [
    "Diagnostic",
    "HAZARD_RULES",
    "LINT_RULES",
    "LintFinding",
    "LintRule",
    "Rule",
    "Severity",
    "Span",
    "VerificationReport",
    "assert_verified",
    "lint_paths",
    "lint_source",
    "verify_schedule",
]

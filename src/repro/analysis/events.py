"""Typed access events and the vector-clock race recorder.

The dynamic half of :mod:`repro.analysis.race`: while a
:class:`RaceRecorder` is installed in :mod:`repro.sanitize`, every
stencil/depth/texture/occlusion/cache/stats access the substrate
performs becomes an :class:`AccessEvent` (object identity, field,
read/write kind, thread, vector-clock snapshot), and every
synchronization operation — thread-pool submit/join, lock
acquire/release, context checkpoint hand-off — becomes a
happens-before edge between thread clocks.

Detection is FastTrack-shaped: per ``(object, field)`` the recorder
keeps the last write's epoch (``(thread, clock[thread])``) and a read
map, and checks each incoming access against them.  Two accesses race
when they come from different threads, at least one is a write, and
neither epoch is covered by the other thread's clock — exactly the
"unordered write-write or read-write pair" the H109 rule names.  The
recorder only *collects*; :func:`repro.analysis.race.RaceReport`
renders the findings with the verifier's span-carrying
:class:`~repro.analysis.diagnostics.Diagnostic` machinery.

The recorder's own mutex protects recorder state only — it is
deliberately **not** a happens-before source for the monitored
program, or instrumenting an access would serialize (and so hide) the
very races being hunted.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
from collections import Counter


class AccessKind(enum.Enum):
    """What an access did to the shared object."""

    READ = "read"
    WRITE = "write"


@dataclasses.dataclass(frozen=True)
class AccessEvent:
    """One shared-state access, as seen by the sanitizer."""

    #: Recorder-lifetime sequence number (the span index H109 cites).
    index: int
    #: ``id()`` of the accessed object.
    obj_id: int
    #: Type name of the accessed object (``"Device"``, ``"Tracer"``...).
    obj_type: str
    #: Which piece of state was touched (``"stencil"``, ``"spans"``...).
    field: str
    kind: AccessKind
    #: ``threading.get_ident()`` of the accessing thread.
    thread_id: int
    #: Thread name at access time (pool threads carry their prefix).
    thread_name: str
    #: The accessing thread's epoch: its own vector-clock component at
    #: access time.  Access A happens-before a later event E iff
    #: ``E.clock[A.thread_id] >= A.epoch``.
    epoch: int

    @property
    def label(self) -> str:
        return f"{self.obj_type}.{self.field}"

    def describe(self) -> str:
        return (
            f"{self.kind.value} of {self.label} "
            f"(obj 0x{self.obj_id:x}) by {self.thread_name!r}"
        )


@dataclasses.dataclass(frozen=True)
class RacePair:
    """Two unordered accesses to the same state, one a write."""

    earlier: AccessEvent
    later: AccessEvent

    def describe(self) -> str:
        return (
            f"{self.later.describe()} is unordered with earlier "
            f"{self.earlier.describe()}; no submit/join, lock, or "
            "checkpoint edge orders them"
        )


class VectorClock:
    """A mutable thread-id -> logical-time map."""

    __slots__ = ("times",)

    def __init__(self, times: dict[int, int] | None = None):
        self.times: dict[int, int] = dict(times) if times else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self.times)

    def get(self, tid: int) -> int:
        return self.times.get(tid, 0)

    def tick(self, tid: int) -> None:
        self.times[tid] = self.times.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum (the acquire/join half of an edge)."""
        for tid, time in other.times.items():
            if time > self.times.get(tid, 0):
                self.times[tid] = time

    def covers(self, tid: int, epoch: int) -> bool:
        """True when an access at ``(tid, epoch)`` happens-before the
        point this clock describes."""
        return self.times.get(tid, 0) >= epoch


class _FieldState:
    """FastTrack-style per-(object, field) detector state."""

    __slots__ = ("last_write", "reads")

    def __init__(self) -> None:
        #: The most recent write, or ``None``.
        self.last_write: AccessEvent | None = None
        #: Per-thread most recent read since the last write.
        self.reads: dict[int, AccessEvent] = {}


class RaceRecorder:
    """Collects access events, maintains happens-before, finds races.

    Install with :func:`repro.analysis.race.use_sanitizer` (or let
    ``REPRO_SAN=1`` / ``GpuEngine(sanitize=True)`` install one
    process-wide); read the verdict with
    :meth:`repro.analysis.race.RaceReport` via ``race.report()``.

    ``max_events`` bounds the retained event list (detection state is
    exact regardless); when the cap trips, older events are no longer
    available for rendering but races are still counted and the
    involved events are always retained.
    """

    def __init__(self, max_events: int = 200_000):
        self._mu = threading.Lock()
        self.max_events = max_events
        #: Every recorded access, in global order (capped).
        self.events: list[AccessEvent] = []
        #: Unordered pairs found so far, in detection order.
        self.races: list[RacePair] = []
        #: Access counts by ``TypeName.field`` (cheap observability;
        #: also the denominator for overhead accounting).
        self.access_counts: Counter[str] = Counter()
        #: Synchronization edges recorded, by kind.
        self.sync_counts: Counter[str] = Counter()
        #: Events dropped once ``max_events`` tripped.
        self.dropped_events = 0
        self._next_index = 0
        self._clocks: dict[int, VectorClock] = {}
        #: Lock token -> last published clock (release edges).
        self._published: dict[int, VectorClock] = {}
        #: Fork token -> clock (pending task begins / ended tasks).
        self._fork_clocks: dict[int, VectorClock] = {}
        self._end_clocks: dict[int, VectorClock] = {}
        self._next_token = 0
        self._objects: dict[tuple[int, str], _FieldState] = {}

    # -- clock plumbing (call with self._mu held) ---------------------------

    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = VectorClock()
            clock.tick(tid)
            self._clocks[tid] = clock
        return clock

    def _publish(self, table: dict[int, VectorClock], token: int) -> None:
        tid = threading.get_ident()
        clock = self._clock(tid)
        existing = table.get(token)
        if existing is None:
            table[token] = clock.copy()
        else:
            existing.join(clock)
        # Later accesses by this thread must not be covered by the
        # snapshot just published.
        clock.tick(tid)

    def _join_from(
        self, table: dict[int, VectorClock], token: int
    ) -> None:
        published = table.get(token)
        if published is not None:
            self._clock(threading.get_ident()).join(published)

    # -- the recorder protocol (see repro.sanitize) --------------------------

    def note(
        self, obj_id: int, obj_type: str, field: str, kind: str
    ) -> None:
        """Record one access and check it against the field's state."""
        thread = threading.current_thread()
        tid = thread.ident or 0
        with self._mu:
            clock = self._clock(tid)
            event = AccessEvent(
                index=self._next_index,
                obj_id=obj_id,
                obj_type=obj_type,
                field=field,
                kind=AccessKind(kind),
                thread_id=tid,
                thread_name=thread.name,
                epoch=clock.get(tid),
            )
            self._next_index += 1
            if len(self.events) < self.max_events:
                self.events.append(event)
            else:
                self.dropped_events += 1
            self.access_counts[event.label] += 1
            self._check(event, clock)

    def acquire(self, token: int) -> None:
        with self._mu:
            self.sync_counts["acquire"] += 1
            self._join_from(self._published, token)

    def release(self, token: int) -> None:
        with self._mu:
            self.sync_counts["release"] += 1
            self._publish(self._published, token)

    def sync(self, token: int) -> None:
        """Acquire-then-release: the checkpoint hand-off edge."""
        with self._mu:
            self.sync_counts["sync"] += 1
            self._join_from(self._published, token)
            self._publish(self._published, token)

    def fork(self) -> int:
        with self._mu:
            self.sync_counts["fork"] += 1
            token = self._next_token
            self._next_token += 1
            self._publish(self._fork_clocks, token)
            return token

    def task_begin(self, token: int) -> None:
        with self._mu:
            self.sync_counts["task_begin"] += 1
            self._join_from(self._fork_clocks, token)

    def task_end(self, token: int) -> None:
        with self._mu:
            self.sync_counts["task_end"] += 1
            self._publish(self._end_clocks, token)

    def task_join(self, token: int) -> None:
        with self._mu:
            self.sync_counts["task_join"] += 1
            self._join_from(self._end_clocks, token)

    # -- detection ----------------------------------------------------------

    def _retain(self, event: AccessEvent) -> None:
        """Make sure a race participant is renderable even past the
        event cap."""
        if self.events and self.events[-1].index >= event.index:
            return
        self.events.append(event)

    def _check(self, event: AccessEvent, clock: VectorClock) -> None:
        key = (event.obj_id, event.field)
        state = self._objects.get(key)
        if state is None:
            state = _FieldState()
            self._objects[key] = state
        write = state.last_write
        if event.kind is AccessKind.WRITE:
            if (
                write is not None
                and write.thread_id != event.thread_id
                and not clock.covers(write.thread_id, write.epoch)
            ):
                self._record_race(write, event)
            for read in state.reads.values():
                if read.thread_id != event.thread_id and not clock.covers(
                    read.thread_id, read.epoch
                ):
                    self._record_race(read, event)
            state.last_write = event
            state.reads.clear()
        else:
            if (
                write is not None
                and write.thread_id != event.thread_id
                and not clock.covers(write.thread_id, write.epoch)
            ):
                self._record_race(write, event)
            state.reads[event.thread_id] = event

    def _record_race(
        self, earlier: AccessEvent, later: AccessEvent
    ) -> None:
        self._retain(earlier)
        self.races.append(RacePair(earlier=earlier, later=later))

    # -- lifecycle ----------------------------------------------------------

    @property
    def num_events(self) -> int:
        """Accesses recorded (dropped ones included)."""
        return self._next_index

    @property
    def num_hooks(self) -> int:
        """Total hook invocations: accesses plus sync edges."""
        return self._next_index + sum(self.sync_counts.values())

    def reset(self) -> None:
        """Drop events, races and detection state; clocks survive so
        cross-reset happens-before stays sound for live threads."""
        with self._mu:
            self.events = []
            self.races = []
            self.access_counts = Counter()
            self.dropped_events = 0
            self._objects = {}

"""The concurrency sanitizer: H109 ``device-race`` and H110
``order-sensitive-combiner``.

Two halves, matching the two ways a concurrent answer can silently go
wrong:

* **Dynamic** — :func:`use_sanitizer` installs a
  :class:`~repro.analysis.events.RaceRecorder` into the
  :mod:`repro.sanitize` hook slot; the instrumented substrate then
  reports every shared-state access and synchronization edge, and
  :func:`race_report` turns any unordered write-write / read-write
  pair into an H109 :class:`~repro.analysis.diagnostics.Diagnostic`
  whose span cites the two event indices.  ``REPRO_SAN=1`` (or
  ``GpuEngine(sanitize=True)``) arms a process-wide recorder via
  :func:`ensure_installed`.

* **Static-ish** — :func:`verify_combiners` checks a shard combiner
  table (:data:`repro.shard.combiners.COMBINER_SPECS`, passed in so
  this layer never imports :mod:`repro.shard`) symbolically: a
  combiner declared order-insensitive must be commutative and
  associative on its sample inputs, otherwise the combined answer
  would depend on pool-completion timing — H110.

Suppression: scope the recorder with :func:`use_sanitizer` around the
code under test, or call ``recorder.reset()`` to discard a noisy
window; there is no per-site suppression because a true H109 is always
a bug (the instrumented fields are all cross-thread state).
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import math
import os
import typing
from collections.abc import Iterator, Sequence

from .. import sanitize
from ..errors import DataRaceError
from .diagnostics import Diagnostic, Severity, Span
from .events import RacePair, RaceRecorder
from .rules import DEVICE_RACE, ORDER_SENSITIVE_COMBINER


class CombinerLike(typing.Protocol):
    """What :func:`verify_combiners` needs from a combiner spec."""

    op: str
    ordered: bool
    samples: tuple[typing.Any, ...]

    def combine(self, left: typing.Any, right: typing.Any) -> typing.Any:
        ...


# -- process-wide recorder management ---------------------------------------

#: The recorder :func:`ensure_installed` created, if any.
_global_recorder: RaceRecorder | None = None


def current_recorder() -> RaceRecorder | None:
    """The :class:`RaceRecorder` currently receiving hook events, or
    ``None`` when the sanitizer is off (or a foreign recorder is
    installed)."""
    recorder = sanitize.active()
    if isinstance(recorder, RaceRecorder):
        return recorder
    return None


def sanitizer_requested() -> bool:
    """True when the ``REPRO_SAN`` environment variable asks for the
    sanitizer (``1``/``true``/``yes``/``on``, case-insensitive)."""
    return os.environ.get("REPRO_SAN", "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


def ensure_installed(force: bool = False) -> RaceRecorder | None:
    """Arm the process-wide sanitizer if asked for.

    Installs (once) a shared :class:`RaceRecorder` when ``force`` is
    true or ``REPRO_SAN`` requests it, and returns the recorder now
    receiving events — ``None`` when the sanitizer stays off.  An
    already-installed recorder (global or :func:`use_sanitizer`-scoped)
    is left in place.
    """
    global _global_recorder
    existing = current_recorder()
    if existing is not None:
        return existing
    if not (force or sanitizer_requested()):
        return None
    if _global_recorder is None:
        _global_recorder = RaceRecorder()
    sanitize.install(_global_recorder)
    return _global_recorder


@contextlib.contextmanager
def use_sanitizer(
    recorder: RaceRecorder | None = None,
) -> Iterator[RaceRecorder]:
    """Install a recorder for the duration of a ``with`` block.

    Yields the (fresh, unless provided) :class:`RaceRecorder`; on exit
    the previously-installed recorder — usually none — is restored, so
    scoped sanitizer windows nest and never leak into later code.
    """
    if recorder is None:
        recorder = RaceRecorder()
    previous = sanitize.install(recorder)
    try:
        yield recorder
    finally:
        sanitize.uninstall(previous)


# -- H109: the dynamic race report ------------------------------------------


@dataclasses.dataclass
class RaceReport:
    """Every race one sanitized window observed, plus the verdict.

    ``diagnostics`` is deduplicated per distinct shape — one H109 per
    ``(state label, earlier kind, later kind)`` with an occurrence
    count — while ``races`` keeps every raw pair for forensics.
    """

    races: list[RacePair]
    diagnostics: list[Diagnostic]
    num_events: int
    access_counts: dict[str, int]
    sync_counts: dict[str, int]

    @property
    def ok(self) -> bool:
        """True when no race was observed."""
        return not self.diagnostics

    def render_text(self) -> str:
        verdict = "ok" if self.ok else "RACY"
        lines = [
            f"sanitize [{verdict}] {self.num_events} accesses, "
            f"{sum(self.sync_counts.values())} sync edges, "
            f"{len(self.races)} unordered pairs"
        ]
        if not self.diagnostics:
            lines.append("  (no races)")
        for diagnostic in self.diagnostics:
            lines.append(f"  ! {diagnostic.render_text()}")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.DataRaceError` when any race
        was observed."""
        if self.ok:
            return
        raise DataRaceError(
            "sanitizer observed data races:\n" + self.render_text(),
            report=self,
        )


def race_report(recorder: RaceRecorder | None = None) -> RaceReport:
    """Build the H109 report from ``recorder`` (default: the installed
    one; an empty clean report when the sanitizer is off)."""
    if recorder is None:
        recorder = current_recorder()
    if recorder is None:
        return RaceReport(
            races=[],
            diagnostics=[],
            num_events=0,
            access_counts={},
            sync_counts={},
        )
    races = list(recorder.races)
    grouped: dict[tuple[str, str, str], list[RacePair]] = {}
    for pair in races:
        key = (
            pair.later.label,
            pair.earlier.kind.value,
            pair.later.kind.value,
        )
        grouped.setdefault(key, []).append(pair)
    diagnostics = []
    for pairs in grouped.values():
        first = pairs[0]
        extra = (
            f" ({len(pairs)} occurrences)" if len(pairs) > 1 else ""
        )
        diagnostics.append(
            DEVICE_RACE.diagnostic(
                Span(start=first.earlier.index, end=first.later.index),
                first.describe() + extra,
            )
        )
    diagnostics.sort(key=lambda d: (d.span.start, d.span.end))
    return RaceReport(
        races=races,
        diagnostics=diagnostics,
        num_events=recorder.num_events,
        access_counts=dict(recorder.access_counts),
        sync_counts=dict(recorder.sync_counts),
    )


def assert_race_free(recorder: RaceRecorder | None = None) -> RaceReport:
    """Build the report and raise on any race; returns the (clean)
    report otherwise."""
    report = race_report(recorder)
    report.raise_if_failed()
    return report


# -- H110: symbolic combiner-table verification -----------------------------


def _values_equal(left: typing.Any, right: typing.Any) -> bool:
    """Structural equality that tolerates float round-off (permuting a
    float sum may shuffle the last ulp; that is not order-sensitivity)."""
    if isinstance(left, float) or isinstance(right, float):
        try:
            return math.isclose(
                float(left), float(right), rel_tol=1e-9, abs_tol=1e-12
            )
        except (TypeError, ValueError):
            return False
    if isinstance(left, dict) and isinstance(right, dict):
        return left.keys() == right.keys() and all(
            _values_equal(left[key], right[key]) for key in left
        )
    if isinstance(left, (list, tuple)) and isinstance(
        right, (list, tuple)
    ):
        return len(left) == len(right) and all(
            _values_equal(a, b) for a, b in zip(left, right)
        )
    result = left == right
    # Array-valued results compare elementwise; collapse to a verdict.
    if hasattr(result, "all"):
        return bool(result.all())
    return bool(result)


def _fold(
    spec: CombinerLike, values: Sequence[typing.Any]
) -> typing.Any:
    accumulator = values[0]
    for value in values[1:]:
        accumulator = spec.combine(accumulator, value)
    return accumulator


@dataclasses.dataclass
class CombinerReport:
    """The H110 verdict over one combiner table."""

    specs: tuple[CombinerLike, ...]
    diagnostics: list[Diagnostic]

    @property
    def ok(self) -> bool:
        return not any(
            d.severity is Severity.ERROR for d in self.diagnostics
        )

    def render_text(self) -> str:
        verdict = "ok" if self.ok else "REJECTED"
        ops = ", ".join(spec.op for spec in self.specs)
        lines = [f"verify combiners [{verdict}] {{{ops}}}"]
        if not self.diagnostics:
            lines.append("  (no hazards)")
        for diagnostic in self.diagnostics:
            lines.append(f"  ! {diagnostic.render_text()}")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.ok:
            return
        raise DataRaceError(
            "combiner table failed verification:\n"
            + self.render_text(),
            report=self,
        )


def verify_combiners(
    specs: Sequence[CombinerLike],
) -> CombinerReport:
    """Check a combiner table for order-sensitivity (hazard H110).

    A spec with ``ordered=True`` is exempt: the shard layer folds it in
    shard order (futures are joined in submission order), so the result
    is deterministic by construction.  Every other spec must be
    **commutative** (``combine(a, b) == combine(b, a)`` for all sample
    pairs) and **associative** (both bracketings of every sample triple
    agree) — the conditions under which a fold in pool-completion order
    equals the fold in shard order.  The diagnostic's span is the
    spec's index into the table.
    """
    diagnostics: list[Diagnostic] = []
    for index, spec in enumerate(specs):
        if spec.ordered:
            continue
        samples = list(spec.samples)
        if len(samples) < 3:
            diagnostics.append(
                ORDER_SENSITIVE_COMBINER.diagnostic(
                    Span.at(index),
                    f"combiner {spec.op!r} declares itself "
                    "order-insensitive but ships fewer than 3 sample "
                    "inputs, so commutativity/associativity cannot be "
                    "checked",
                )
            )
            continue
        failure = _order_sensitivity(spec, samples)
        if failure is not None:
            diagnostics.append(
                ORDER_SENSITIVE_COMBINER.diagnostic(
                    Span.at(index), f"combiner {spec.op!r} {failure}"
                )
            )
    return CombinerReport(specs=tuple(specs), diagnostics=diagnostics)


def _order_sensitivity(
    spec: CombinerLike, samples: list[typing.Any]
) -> str | None:
    """The first commutativity/associativity violation, or ``None``."""
    for left, right in itertools.combinations(samples, 2):
        if not _values_equal(
            spec.combine(left, right), spec.combine(right, left)
        ):
            return (
                "is not commutative: combine(a, b) != combine(b, a) "
                f"for samples a={left!r}, b={right!r}"
            )
    for a, b, c in itertools.combinations(samples, 3):
        if not _values_equal(
            spec.combine(spec.combine(a, b), c),
            spec.combine(a, spec.combine(b, c)),
        ):
            return (
                "is not associative: (a+b)+c != a+(b+c) for samples "
                f"a={a!r}, b={b!r}, c={c!r}"
            )
    for ordering in itertools.permutations(samples[:4]):
        if not _values_equal(
            _fold(spec, list(ordering)), _fold(spec, samples[:4])
        ):
            return (
                "produces order-dependent folds: permuting "
                f"{samples[:4]!r} changes the combined result"
            )
    return None

"""Symbolic device state for the abstract schedule interpreter.

:class:`AbstractState` carries what the verifier can prove about the
simulated device at each point of a schedule — which column's values
the depth buffer holds, how far the EvalCNF / EvalDNF stencil protocol
has advanced, and which occlusion queries are pending — without ever
touching the device.  Pass nodes only *append* facts through the
interpreter's transfer functions; the state never consults buffers.
"""

from __future__ import annotations

import dataclasses

from ..gpu.state import CNF_STENCIL_VALUES, cnf_valid_stencil

#: Re-exported so diagnostics can cite the protocol alphabet.
CNF_PROTOCOL_VALUES = CNF_STENCIL_VALUES


@dataclasses.dataclass
class AbstractState:
    """What is provable about the device mid-schedule."""

    #: Column whose values the depth buffer is proven to hold
    #: (``None`` = undefined / never populated).
    depth_holds: str | None = None
    #: Node indices of occlusion queries begun (counted passes) and not
    #: yet harvested, in begin order.
    pending_queries: list[int] = dataclasses.field(default_factory=list)
    #: Total occlusion results harvested so far.
    harvested: int = 0
    #: Last EvalCNF clause whose cleanup pass ran (``None`` outside a
    #: CNF run); cleanups must arrive 1, 2, 3, ... for the {0,1,2}
    #: ping-pong to stay sound.
    cnf_clause: int | None = None
    #: DNF clause currently armed in the two-bit working plane
    #: (``None`` when no clause is in flight).
    dnf_armed: int | None = None
    #: Whether the armed DNF clause has run its accept pass.
    dnf_accepted: bool = False
    #: Highest DNF clause accepted so far in the current run.
    dnf_last_clause: int = 0
    #: Trailing dnf-normalize passes seen (the protocol ends a DNF run
    #: with exactly two).
    dnf_normalizes: int = 0
    #: Every column the schedule has read so far (copies and direct
    #: texture fetches) — checked against the declared cache key.
    columns_read: set[str] = dataclasses.field(default_factory=set)

    def note_copy(self, column: str) -> None:
        self.depth_holds = column
        self.columns_read.add(column)

    def begin_query(self, node_index: int) -> None:
        self.pending_queries.append(node_index)

    def expected_cnf_valid(self) -> int:
        """The stencil value the *next* CNF clause treats as "valid so
        far" — exposed so protocol diagnostics can cite it."""
        next_clause = (self.cnf_clause or 0) + 1
        return cnf_valid_stencil(next_clause)

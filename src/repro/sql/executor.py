"""SQL execution over the GPU and CPU engines.

:class:`Database` is the user-facing entry point::

    db = Database()
    db.register(make_tcpip(100_000))
    result = db.query(
        "SELECT COUNT(*), MAX(data_count) FROM tcpip "
        "WHERE data_loss > 100 AND flow_rate BETWEEN 1000 AND 60000"
    )

Queries run on whichever device the planner picks (GPU for selections
and order statistics at scale, CPU for SUM/AVG — the paper's
co-processor split) unless ``device=`` forces one.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.cpu_engine import CpuEngine
from ..core.engine import GpuEngine
from ..core.relation import Relation
from ..cpu.cost import CpuCostModel
from ..errors import GpuError, QueryError, SqlPlanError
from ..faults import ResilientExecutor, current_executor
from ..gpu.cost import GpuCostModel
from ..gpu.counters import PipelineStats
from ..plan import PassSchedule, lower_statement
from ..trace import Trace, Tracer
from .ast import (
    AggregateFunc,
    AggregateItem,
    ColumnItem,
    SelectStatement,
    StarItem,
)
from .parser import parse
from .planner import DeviceChoice, Planner, QueryPlan


@dataclasses.dataclass
class QueryResult:
    """Rows plus provenance: which device ran it and the plan."""

    columns: list[str]
    rows: list[tuple]
    device: DeviceChoice
    plan: QueryPlan
    #: Per-pass execution trace, when the query ran with ``trace=True``.
    trace: Trace | None = None
    #: True when the GPU path failed for good and the answer came from
    #: the CPU engine instead (``device`` reflects the engine that
    #: actually produced the rows).
    fallback: bool = False
    #: The persistent GPU error that forced the fallback, as text.
    fallback_error: str | None = None
    #: Per-operation engine results (``GpuOpResult``/``CpuOpResult``)
    #: collected while the query ran, in execution order.
    op_results: list = dataclasses.field(
        default_factory=list, repr=False, compare=False
    )

    # -- unified cost accessors (shared with GpuOpResult/CpuOpResult) --

    @property
    def time_ms(self) -> float:
        """Simulated device milliseconds summed over every engine
        operation this query issued."""
        return sum(result.time_ms for result in self.op_results)

    @property
    def pass_count(self) -> int:
        """Rendering passes issued across the whole query (0 on CPU)."""
        return sum(result.pass_count for result in self.op_results)

    @property
    def stats(self) -> PipelineStats:
        """Merged pipeline statistics over every engine operation."""
        return PipelineStats.merged(
            result.stats for result in self.op_results
        )

    @property
    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlPlanError(
                f"result is {len(self.rows)}x{len(self.columns)}, "
                "not scalar"
            )
        return self.rows[0][0]

    def column(self, label: str) -> list:
        try:
            index = self.columns.index(label)
        except ValueError:
            raise SqlPlanError(
                f"no result column {label!r}; have {self.columns}"
            ) from None
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """A named collection of relations with lazily-built engines."""

    def __init__(
        self,
        gpu_cost: GpuCostModel | None = None,
        cpu_cost: CpuCostModel | None = None,
        executor: ResilientExecutor | None = None,
        shards: int | None = None,
    ):
        """``executor`` attaches a
        :class:`~repro.faults.ResilientExecutor` shared by every engine
        this database builds: engine operations retry transient GPU
        faults, and a query whose GPU path fails for good degrades to
        the CPU engine with ``QueryResult.fallback`` set (unless the
        caller forced ``device="gpu"``).  Defaults to the process-wide
        executor from :func:`repro.faults.use_executor`, usually
        ``None`` — GPU failures then surface as
        :class:`~repro.errors.QueryError`.

        ``shards`` partitions every GPU engine this database builds
        across that many simulated devices (:mod:`repro.shard`):
        per-shard schedules run concurrently and the host combines the
        answers.  ``None`` follows ``REPRO_SHARDS``; the default of 1
        is the single-device engine, bit-identical to ``shards=None``
        with the variable unset.  ``explain`` renders the fan-out.
        """
        from ..shard import resolve_shards

        self.gpu_cost = gpu_cost or GpuCostModel()
        self.cpu_cost = cpu_cost or CpuCostModel()
        self.shards = resolve_shards(shards)
        self.executor = (
            executor if executor is not None else current_executor()
        )
        self.planner = Planner(self.gpu_cost, self.cpu_cost)
        self._relations: dict[str, Relation] = {}
        self._gpu_engines: dict[str, GpuEngine] = {}
        self._cpu_engines: dict[str, CpuEngine] = {}
        #: Tracer of the in-flight traced query, threaded into engines
        #: built lazily while it runs.
        self._query_tracer: Tracer | None = None
        #: Engine op results of the in-flight query (``None`` when idle).
        self._op_log: list | None = None

    def register(self, relation: Relation) -> None:
        self._relations[relation.name] = relation
        self._gpu_engines.pop(relation.name, None)
        self._cpu_engines.pop(relation.name, None)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SqlPlanError(
                f"unknown table {name!r}; registered: "
                f"{sorted(self._relations)}"
            ) from None

    def gpu_engine(self, name: str) -> GpuEngine:
        engine = self._gpu_engines.get(name)
        if engine is None:
            engine = GpuEngine(
                self.relation(name),
                self.gpu_cost,
                tracer=self._query_tracer,
                executor=self.executor,
                shards=self.shards,
            )
            self._gpu_engines[name] = engine
        return engine

    def cpu_engine(self, name: str) -> CpuEngine:
        engine = self._cpu_engines.get(name)
        if engine is None:
            engine = CpuEngine(
                self.relation(name),
                self.cpu_cost,
                tracer=self._query_tracer,
            )
            self._cpu_engines[name] = engine
        return engine

    # -- entry points ------------------------------------------------------------

    @staticmethod
    def _normalize_device(device) -> DeviceChoice:
        """Require the :class:`DeviceChoice` enum (``repro.sql.Device``).

        The string form (``"gpu"`` / ``"cpu"`` / ``"auto"``) went
        through a deprecation cycle and is now rejected outright with a
        typed error naming the replacement.
        """
        if isinstance(device, DeviceChoice):
            return device
        if isinstance(device, str):
            raise SqlPlanError(
                f"device={device!r}: the string device form has been "
                "removed; pass repro.sql.Device.GPU / .CPU / .AUTO"
            )
        raise SqlPlanError(
            f"unknown device {device!r}; pass repro.sql.Device.GPU / "
            ".CPU / .AUTO"
        )

    def plan(
        self, sql: str, device: DeviceChoice = DeviceChoice.AUTO
    ) -> QueryPlan:
        statement = parse(sql)
        relation = self.relation(statement.table)
        right = None
        if statement.join is not None:
            right = self.relation(statement.join.right_table)
        return self.planner.plan(
            statement,
            relation,
            self._normalize_device(device),
            right_relation=right,
        )

    def explain(
        self,
        sql: str,
        device: DeviceChoice = DeviceChoice.AUTO,
        fuse: bool = True,
        verify: bool = False,
        jit: bool = False,
    ) -> PassSchedule:
        """Compile ``sql`` to the :class:`~repro.plan.PassSchedule` the
        chosen device would execute, without running it.

        The schedule renders with
        :meth:`~repro.plan.PassSchedule.render_text`, mirroring the
        pass tree a traced execution produces.  ``fuse=False`` shows
        the unfused lowering for comparison.

        ``verify=True`` additionally runs the static schedule verifier
        (:mod:`repro.analysis`) over the compiled schedule, raising
        :class:`~repro.errors.PlanVerificationError` — whose ``report``
        attribute carries the typed diagnostics — if it hides a hazard.

        ``jit=True`` annotates the schedule (``meta["kernels"]``) with
        the :mod:`repro.gpu.jit` compiled-kernel summaries of the
        fragment programs its passes bind — one line per distinct
        program showing the instruction count surviving dead-code
        elimination.  Fixed-function passes (plain compare / range
        quads) bind no program and are not listed.
        """
        plan = self.plan(sql, device=device)
        schedule = lower_statement(
            plan.statement,
            plan.relation,
            fuse=fuse,
            device=plan.chosen_device.value,
        )
        if verify:
            from ..analysis import assert_verified

            assert_verified(schedule)
        if jit:
            schedule.meta["kernels"] = self._kernel_summaries(schedule)
        if self.shards > 1 and schedule.device == "gpu":
            schedule.fanout = self._shard_fanout(
                schedule, plan.relation, plan.statement
            )
        return schedule

    def _shard_fanout(
        self, schedule: PassSchedule, relation: Relation, statement
    ):
        """The :class:`~repro.plan.ShardFanout` annotation describing
        how this database's shard pool would execute ``schedule``: the
        balanced record partition, each shard's virtual-context cid
        band, and the host-side combiner for the schedule's op."""
        from ..plan import ShardFanout
        from ..shard import (
            COMBINERS,
            SHARD_CID_STRIDE,
            pool_threads,
            shard_bounds,
        )

        combiner = COMBINERS.get(schedule.op)
        if combiner is None:
            # Whole-statement schedules carry op="query"; name the
            # combiner of each aggregate item (projections concatenate).
            labels: list[str] = []
            for item in getattr(statement, "items", ()):
                func = getattr(item, "func", None)
                if func is None:
                    continue
                key = {
                    "COUNT": "count",
                    "SUM": "sum",
                    "AVG": "average",
                    "MIN": "minimum",
                    "MAX": "maximum",
                    "MEDIAN": "median",
                }.get(func.value)
                label = COMBINERS.get(key or "", None)
                if label and label not in labels:
                    labels.append(label)
            combiner = (
                "; ".join(labels) if labels else COMBINERS["select"]
            )
        bounds = shard_bounds(relation.num_records, self.shards)
        return ShardFanout(
            shards=self.shards,
            threads=pool_threads(self.shards),
            shard_records=tuple(stop - start for start, stop in bounds),
            bands=tuple(
                ((index + 1) * SHARD_CID_STRIDE, SHARD_CID_STRIDE)
                for index in range(self.shards)
            ),
            combiner=combiner,
        )

    @staticmethod
    def _kernel_summaries(schedule: PassSchedule) -> list[str]:
        """Compiled-kernel one-liners for the statically-known fragment
        programs a schedule's passes bind (copy-to-depth and the
        Accumulator's alpha-tested TestBit), deduplicated in first-use
        order."""
        from ..gpu.jit import kernel_summary
        from ..gpu.programs import copy_to_depth_program, test_bit_program
        from ..plan import CompareQuadPass, CopyDepthPass

        summaries: list[str] = []
        for node in schedule.nodes:
            if isinstance(node, CopyDepthPass):
                text = kernel_summary(
                    copy_to_depth_program(node.channel)
                )
            elif isinstance(node, CompareQuadPass) and (
                node.detail.startswith("TestBit")
            ):
                # The alpha test consumes the program's color output.
                text = kernel_summary(
                    test_bit_program(), need_color=True
                )
            else:
                continue
            if text not in summaries:
                summaries.append(text)
        return summaries

    def query(
        self,
        sql: str,
        device: DeviceChoice = DeviceChoice.AUTO,
        trace: bool = False,
    ) -> QueryResult:
        """Parse, plan and execute ``sql``.

        ``trace=True`` records every engine operation and rendering
        pass of this query into a :class:`~repro.trace.Trace`
        (``result.trace``); render it with
        :func:`repro.trace.render_text` or export it with
        :func:`repro.trace.write_chrome_trace`.
        """
        requested = self._normalize_device(device)
        plan = self.plan(sql, device=requested)
        chosen = plan.chosen_device
        if not trace:
            rows, columns, fell_back = self._execute(
                plan, chosen, requested=requested
            )
            return self._result(plan, chosen, rows, columns, fell_back)
        tracer = Tracer(cost_model=self.gpu_cost)
        # Attach the tracer to every cached engine (engines built while
        # it is installed pick it up through the cache accessors), and
        # restore the previous tracers afterwards.
        previous = [
            (engine, engine.tracer)
            for engine in (
                list(self._gpu_engines.values())
                + list(self._cpu_engines.values())
            )
        ]
        for engine, _old in previous:
            engine.tracer = tracer
        self._query_tracer = tracer
        span = tracer.begin(
            "query", category="query", sql=sql, device=chosen.value
        )
        try:
            rows, columns, fell_back = self._execute(
                plan, chosen, requested=requested
            )
        finally:
            tracer.end(span)
            self._query_tracer = None
            restored = set()
            for engine, old in previous:
                engine.tracer = old
                restored.add(id(engine))
            for engine in (
                list(self._gpu_engines.values())
                + list(self._cpu_engines.values())
            ):
                if id(engine) not in restored:
                    engine.tracer = None  # built during this query
        return self._result(
            plan, chosen, rows, columns, fell_back,
            trace=tracer.finish(),
        )

    def _result(
        self, plan, chosen, rows, columns, fell_back, trace=None
    ) -> QueryResult:
        ops = self._op_log or []
        self._op_log = None
        if fell_back is not None:
            return QueryResult(
                columns=columns,
                rows=rows,
                device=DeviceChoice.CPU,
                plan=plan,
                trace=trace,
                fallback=True,
                fallback_error=(
                    f"{type(fell_back).__name__}: {fell_back}"
                ),
                op_results=ops,
            )
        return QueryResult(
            columns=columns,
            rows=rows,
            device=chosen,
            plan=plan,
            trace=trace,
            op_results=ops,
        )

    def _note_op(self, result):
        """Collect an engine op result for the in-flight query's unified
        cost accessors; returns the result unchanged."""
        if self._op_log is not None:
            self._op_log.append(result)
        return result

    def _execute(
        self,
        plan: QueryPlan,
        chosen: DeviceChoice,
        requested: DeviceChoice = DeviceChoice.AUTO,
    ):
        """Run the plan; returns ``(rows, columns, fallback_error)``.

        The substrate's typed :class:`~repro.errors.GpuError` never
        leaks raw to the caller: with a
        :class:`~repro.faults.ResilientExecutor` attached (and the
        device not forced to ``"gpu"``), a persistent GPU failure
        degrades to the CPU engine and the error is reported through
        ``QueryResult.fallback``; otherwise it is wrapped in a
        :class:`~repro.errors.QueryError` with the original as
        ``__cause__``.
        """
        statement = plan.statement
        self._op_log = []
        try:
            if statement.join is not None:
                rows, columns = self._execute_join(statement, chosen)
            elif chosen is DeviceChoice.GPU:
                rows, columns = self._execute_gpu(statement)
            else:
                rows, columns = self._execute_cpu(statement)
            return rows, columns, None
        except GpuError as error:
            if chosen is not DeviceChoice.GPU:
                raise  # CPU paths never touch the substrate
            if self.executor is None or requested is DeviceChoice.GPU:
                raise QueryError(
                    f"GPU execution failed: {error}"
                ) from error
            self.executor.stats.record_fallback("query")
            if self._query_tracer is not None:
                self._query_tracer.record_event(
                    "fallback",
                    op="query",
                    error=type(error).__name__,
                    detail=str(error),
                )
            if statement.join is not None:
                rows, columns = self._execute_join(
                    statement, DeviceChoice.CPU
                )
            else:
                rows, columns = self._execute_cpu(statement)
            return rows, columns, error

    # -- execution ------------------------------------------------------------------

    def _execute_join(
        self, statement: SelectStatement, device: DeviceChoice
    ):
        """Equi-join: GPU-histogram-pruned band join or CPU sort-probe.

        Both paths produce identical, deterministically ordered pairs.
        """
        join = statement.join
        left = self.relation(statement.table)
        right = self.relation(join.right_table)
        if device is DeviceChoice.GPU:
            from ..ext.join import band_join

            result = band_join(
                self.gpu_engine(statement.table),
                self.gpu_engine(join.right_table),
                join.left_column,
                join.right_column,
                band=0,
            )
            pairs = result.pairs
        else:
            from ..ext.join import hash_equi_join

            pairs = hash_equi_join(
                left.column(join.left_column).values,
                right.column(join.right_column).values,
            )
        return self._project_join(statement, left, right, pairs)

    def _project_join(self, statement, left, right, pairs):
        items = statement.items
        if statement.is_aggregate:
            labels = [item.label for item in items]
            if len(items) != 1:
                raise SqlPlanError(
                    "JOIN aggregate queries support a single COUNT(*)"
                )
            return [(int(pairs.shape[0]),)], labels
        specs = []  # (side, column_name, label)
        for item in items:
            if isinstance(item, StarItem):
                for name in left.column_names:
                    specs.append(("left", name, f"{left.name}.{name}"))
                for name in right.column_names:
                    specs.append(
                        ("right", name, f"{right.name}.{name}")
                    )
            else:
                side = "left" if item.table == left.name else "right"
                specs.append((side, item.column, item.label))
        labels = [label for _side, _name, label in specs]
        arrays = []
        for side, name, _label in specs:
            relation = left if side == "left" else right
            ids = pairs[:, 0] if side == "left" else pairs[:, 1]
            column = relation.column(name)
            values = column.values[ids]
            if column.is_integer:
                values = values.astype(np.int64)
            arrays.append(values)
        rows = [
            tuple(array[i].item() for array in arrays)
            for i in range(pairs.shape[0])
        ]
        return rows, labels

    def _execute_gpu(self, statement: SelectStatement):
        engine = self.gpu_engine(statement.table)
        predicate = statement.where
        if statement.group_by is not None:
            return self._execute_grouped(
                statement, engine, self._gpu_aggregate
            )
        if statement.is_aggregate:
            probe_count = None
            if predicate is not None:
                probe_count = self._note_op(
                    engine.count(predicate)
                ).value
            empty = probe_count == 0
            row = []
            labels = []
            for item in statement.items:
                labels.append(item.label)
                if (
                    probe_count is not None
                    and isinstance(item, AggregateItem)
                    and item.func is AggregateFunc.COUNT
                ):
                    # The probe already evaluated this WHERE mask;
                    # reusing its count here is the executor half of
                    # the plan compiler's selection-reuse fusion.
                    row.append(probe_count)
                    continue
                row.append(
                    self._aggregate_or_null(
                        engine, item, predicate, empty,
                        self._gpu_aggregate,
                    )
                )
            return [tuple(row)], labels
        return self._project(
            engine.relation,
            self._gpu_selected_ids(engine, predicate),
            statement.items,
        )

    def _gpu_selected_ids(self, engine: GpuEngine, predicate):
        if predicate is None:
            return np.arange(engine.relation.num_records)
        return self._note_op(engine.select(predicate)).record_ids()

    @staticmethod
    def _aggregate_or_null(engine, item, predicate, empty, aggregate):
        """SQL semantics over empty selections: COUNT(*) is 0, every
        other aggregate is NULL (None)."""
        if empty and isinstance(item, AggregateItem):
            if item.func is AggregateFunc.COUNT:
                return 0
            return None
        return aggregate(engine, item, predicate)

    def _gpu_aggregate(self, engine: GpuEngine, item, predicate):
        if not isinstance(item, AggregateItem):
            raise SqlPlanError(
                "mixing aggregates with plain columns is not supported "
                "(aggregate queries return one row per group)"
            )
        func = item.func
        if func is AggregateFunc.COUNT:
            return self._note_op(engine.count(predicate)).value
        if func is AggregateFunc.SUM:
            return self._note_op(engine.sum(item.column, predicate)).value
        if func is AggregateFunc.AVG:
            return self._note_op(
                engine.average(item.column, predicate)
            ).value
        if func is AggregateFunc.MIN:
            return self._note_op(
                engine.minimum(item.column, predicate)
            ).value
        if func is AggregateFunc.MAX:
            return self._note_op(
                engine.maximum(item.column, predicate)
            ).value
        return self._note_op(engine.median(item.column, predicate)).value

    def _execute_cpu(self, statement: SelectStatement):
        engine = self.cpu_engine(statement.table)
        predicate = statement.where
        if statement.group_by is not None:
            return self._execute_grouped(
                statement, engine, self._cpu_aggregate
            )
        if statement.is_aggregate:
            empty = (
                predicate is not None
                and self._note_op(engine.count(predicate)).value == 0
            )
            row = []
            labels = []
            for item in statement.items:
                labels.append(item.label)
                row.append(
                    self._aggregate_or_null(
                        engine, item, predicate, empty,
                        self._cpu_aggregate,
                    )
                )
            return [tuple(row)], labels
        if predicate is None:
            ids = np.arange(engine.relation.num_records)
        else:
            ids = self._note_op(engine.select(predicate)).record_ids()
        return self._project(engine.relation, ids, statement.items)

    def _cpu_aggregate(self, engine: CpuEngine, item, predicate):
        if not isinstance(item, AggregateItem):
            raise SqlPlanError(
                "mixing aggregates with plain columns is not supported "
                "(aggregate queries return one row per group)"
            )
        func = item.func
        if func is AggregateFunc.COUNT:
            return self._note_op(engine.count(predicate)).value
        if func is AggregateFunc.SUM:
            return self._note_op(engine.sum(item.column, predicate)).value
        if func is AggregateFunc.AVG:
            return self._note_op(
                engine.average(item.column, predicate)
            ).value
        if func is AggregateFunc.MIN:
            return self._note_op(
                engine.minimum(item.column, predicate)
            ).value
        if func is AggregateFunc.MAX:
            return self._note_op(
                engine.maximum(item.column, predicate)
            ).value
        return self._note_op(engine.median(item.column, predicate)).value

    def _execute_grouped(self, statement: SelectStatement, engine,
                         aggregate):
        """GROUP BY: one masked aggregation sweep per distinct group
        value, using the engine's stencil/mask selection machinery."""
        from ..core.predicates import And, Comparison
        from ..gpu.types import CompareFunc

        group_column = statement.group_by
        relation = engine.relation
        keys = np.unique(
            relation.column(group_column).values.astype(np.int64)
        )
        labels = [group_column] + [
            item.label for item in statement.items
        ]
        rows = []
        for key in keys:
            group_predicate = Comparison(
                group_column, CompareFunc.EQUAL, float(key)
            )
            if statement.where is not None:
                predicate = And(statement.where, group_predicate)
            else:
                predicate = group_predicate
            if self._note_op(engine.count(predicate)).value == 0:
                continue  # the WHERE clause emptied this group
            row = [int(key)]
            for item in statement.items:
                row.append(aggregate(engine, item, predicate))
            rows.append(tuple(row))
        return rows, labels

    @staticmethod
    def _project(relation: Relation, ids: np.ndarray, items):
        names: list[str] = []
        labels: list[str] = []
        for item in items:
            if isinstance(item, StarItem):
                names.extend(relation.column_names)
                labels.extend(relation.column_names)
            elif isinstance(item, ColumnItem):
                names.append(item.column)
                labels.append(item.label)
            else:
                raise SqlPlanError(
                    "mixing aggregates with plain columns is not "
                    "supported (aggregate queries return one row per group)"
                )
        columns = [relation.column(name) for name in names]
        arrays = [
            column.values[ids].astype(np.int64)
            if column.is_integer
            else column.values[ids]
            for column in columns
        ]
        rows = [
            tuple(array[i].item() for array in arrays)
            for i in range(ids.size)
        ]
        return rows, labels

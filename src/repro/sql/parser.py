"""Recursive-descent parser for the supported SQL subset.

Grammar::

    statement  := SELECT items FROM ident
                  [JOIN ident ON qualified '=' qualified]
                  [WHERE condition] [GROUP BY ident]
    qualified  := ident '.' ident
    items      := '*' | item (',' item)*
    item       := agg '(' (ident | '*') ')' [AS ident] | ident [AS ident]
    agg        := COUNT | SUM | AVG | MIN | MAX | MEDIAN
    condition  := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | primary
    primary    := '(' condition ')' | predicate
    predicate  := ident op (number | ident)
                | ident [NOT] BETWEEN number AND number
    op         := '=' | '!=' | '<' | '<=' | '>' | '>='

WHERE conditions map directly onto :mod:`repro.core.predicates`
(attribute-vs-attribute comparisons become semi-linear predicates, as in
paper section 4.1.2).
"""

from __future__ import annotations

from ..core.predicates import (
    And,
    Between,
    Comparison,
    Not,
    Or,
    Predicate,
    attr_compare,
)
from ..errors import SqlSyntaxError
from ..gpu.types import CompareFunc
from .ast import (
    AggregateFunc,
    AggregateItem,
    ColumnItem,
    JoinClause,
    SelectItem,
    SelectStatement,
    StarItem,
)
from .lexer import Token, TokenType, tokenize

_OPERATORS = {
    "=": CompareFunc.EQUAL,
    "!=": CompareFunc.NOTEQUAL,
    "<": CompareFunc.LESS,
    "<=": CompareFunc.LEQUAL,
    ">": CompareFunc.GREATER,
    ">=": CompareFunc.GEQUAL,
}

_AGGREGATES = {f.value for f in AggregateFunc}


def parse(source: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return _Parser(tokenize(source)).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # -- cursor helpers -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.current
        if not token.is_keyword(word):
            raise SqlSyntaxError(
                f"expected {word}, found {token.text or 'end of input'!r}",
                position=token.position,
            )
        return self.advance()

    def expect(self, token_type: TokenType) -> Token:
        token = self.current
        if token.type is not token_type:
            raise SqlSyntaxError(
                f"expected {token_type.value}, found "
                f"{token.text or 'end of input'!r}",
                position=token.position,
            )
        return self.advance()

    # -- grammar --------------------------------------------------------------

    def parse_statement(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        items = self._parse_items()
        self.expect_keyword("FROM")
        table = self.expect(TokenType.IDENT).text
        join = None
        if self.current.is_keyword("JOIN"):
            join = self._parse_join(table)
        where = None
        if self.current.is_keyword("WHERE"):
            self.advance()
            where = self._parse_condition()
        group_by = None
        if self.current.is_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by = self.expect(TokenType.IDENT).text
        trailing = self.current
        if trailing.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input {trailing.text!r}",
                position=trailing.position,
            )
        return SelectStatement(
            items=tuple(items),
            table=table,
            where=where,
            group_by=group_by,
            join=join,
        )

    def _parse_join(self, left_table: str) -> JoinClause:
        self.expect_keyword("JOIN")
        right_table = self.expect(TokenType.IDENT).text
        if right_table == left_table:
            raise SqlSyntaxError(
                "self-joins are not supported (no table aliases)"
            )
        self.expect_keyword("ON")
        first_table, first_column = self._parse_qualified()
        operator = self.expect(TokenType.OPERATOR)
        if operator.text != "=":
            raise SqlSyntaxError(
                "only equi-joins (=) are supported",
                position=operator.position,
            )
        second_table, second_column = self._parse_qualified()
        sides = {first_table: first_column, second_table: second_column}
        if set(sides) != {left_table, right_table}:
            raise SqlSyntaxError(
                f"JOIN condition must reference {left_table!r} and "
                f"{right_table!r}, got {sorted(sides)}"
            )
        return JoinClause(
            right_table=right_table,
            left_column=sides[left_table],
            right_column=sides[right_table],
        )

    def _parse_qualified(self) -> tuple[str, str]:
        table = self.expect(TokenType.IDENT).text
        self.expect(TokenType.DOT)
        column = self.expect(TokenType.IDENT).text
        return table, column

    def _parse_items(self) -> list[SelectItem]:
        if self.current.type is TokenType.STAR:
            self.advance()
            return [StarItem()]
        items = [self._parse_item()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            items.append(self._parse_item())
        return items

    def _parse_item(self) -> SelectItem:
        token = self.current
        if token.type is TokenType.KEYWORD and token.text in _AGGREGATES:
            self.advance()
            func = AggregateFunc(token.text)
            self.expect(TokenType.LPAREN)
            if self.current.type is TokenType.STAR:
                if func is not AggregateFunc.COUNT:
                    raise SqlSyntaxError(
                        f"{func.value}(*) is not supported",
                        position=self.current.position,
                    )
                self.advance()
                column = None
            else:
                column = self.expect(TokenType.IDENT).text
            self.expect(TokenType.RPAREN)
            return AggregateItem(
                func=func, column=column, alias=self._parse_alias()
            )
        if token.type is TokenType.IDENT:
            self.advance()
            if self.current.type is TokenType.DOT:
                self.advance()
                column = self.expect(TokenType.IDENT).text
                return ColumnItem(
                    column=column,
                    alias=self._parse_alias(),
                    table=token.text,
                )
            return ColumnItem(column=token.text, alias=self._parse_alias())
        raise SqlSyntaxError(
            f"expected a select item, found {token.text!r}",
            position=token.position,
        )

    def _parse_alias(self) -> str | None:
        if self.current.is_keyword("AS"):
            self.advance()
            return self.expect(TokenType.IDENT).text
        return None

    # -- conditions -------------------------------------------------------------

    def _parse_condition(self) -> Predicate:
        left = self._parse_and()
        terms = [left]
        while self.current.is_keyword("OR"):
            self.advance()
            terms.append(self._parse_and())
        return terms[0] if len(terms) == 1 else Or(*terms)

    def _parse_and(self) -> Predicate:
        terms = [self._parse_not()]
        while self.current.is_keyword("AND"):
            self.advance()
            terms.append(self._parse_not())
        return terms[0] if len(terms) == 1 else And(*terms)

    def _parse_not(self) -> Predicate:
        if self.current.is_keyword("NOT"):
            self.advance()
            return Not(self._parse_not())
        return self._parse_primary()

    def _parse_primary(self) -> Predicate:
        if self.current.type is TokenType.LPAREN:
            self.advance()
            inner = self._parse_condition()
            self.expect(TokenType.RPAREN)
            return inner
        return self._parse_predicate()

    def _parse_predicate(self) -> Predicate:
        column = self.expect(TokenType.IDENT).text
        token = self.current
        if token.is_keyword("NOT"):
            self.advance()
            between = self._parse_between(column)
            return Not(between)
        if token.is_keyword("BETWEEN"):
            return self._parse_between(column)
        if token.type is not TokenType.OPERATOR:
            raise SqlSyntaxError(
                f"expected a comparison operator, found {token.text!r}",
                position=token.position,
            )
        self.advance()
        op = _OPERATORS[token.text]
        value = self.current
        if value.type is TokenType.NUMBER:
            self.advance()
            return Comparison(column, op, float(value.text))
        if value.type is TokenType.IDENT:
            self.advance()
            return attr_compare(column, op, value.text)
        raise SqlSyntaxError(
            f"expected a number or column, found {value.text!r}",
            position=value.position,
        )

    def _parse_between(self, column: str) -> Between:
        self.expect_keyword("BETWEEN")
        low = float(self.expect(TokenType.NUMBER).text)
        self.expect_keyword("AND")
        high = float(self.expect(TokenType.NUMBER).text)
        return Between(column, low, high)

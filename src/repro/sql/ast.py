"""SQL abstract syntax tree.

Only what the paper's query shape needs: a single-table SELECT with an
optional WHERE of boolean predicate combinations, and aggregate or
column items in the select list.
"""

from __future__ import annotations

import dataclasses
import enum

from ..core.predicates import Predicate


class AggregateFunc(enum.Enum):
    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"
    MEDIAN = "MEDIAN"


@dataclasses.dataclass(frozen=True)
class AggregateItem:
    """``FUNC(column)`` or ``COUNT(*)``."""

    func: AggregateFunc
    column: str | None  # None only for COUNT(*)
    alias: str | None = None

    @property
    def label(self) -> str:
        if self.alias:
            return self.alias
        target = "*" if self.column is None else self.column
        return f"{self.func.value}({target})"


@dataclasses.dataclass(frozen=True)
class ColumnItem:
    """A projected column, optionally table-qualified (joins)."""

    column: str
    alias: str | None = None
    table: str | None = None

    @property
    def label(self) -> str:
        if self.alias:
            return self.alias
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclasses.dataclass(frozen=True)
class StarItem:
    """``SELECT *``."""

    @property
    def label(self) -> str:
        return "*"


SelectItem = AggregateItem | ColumnItem | StarItem


@dataclasses.dataclass(frozen=True)
class JoinClause:
    """``JOIN right_table ON left_table.left_column =
    right_table.right_column`` (equi-join)."""

    right_table: str
    left_column: str
    right_column: str


@dataclasses.dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    table: str
    where: Predicate | None
    group_by: str | None = None
    join: JoinClause | None = None

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(item, AggregateItem) for item in self.items)

"""Query planner: validate, and pick the execution device.

The paper's conclusion is that the GPU is "an effective co-processor"
for *some* operations — selections, semi-linear queries, order
statistics — while others (SUM/AVG via ``Accumulator``) stay on the CPU
(sections 6.2.1-6.2.3).  The planner encodes exactly that: for each
query it prices both devices with the calibrated cost models and routes
accordingly, unless the caller forces a device.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from ..core.cpu_engine import predicate_terms
from ..core.predicates import (
    And,
    Between,
    Comparison,
    Not,
    Or,
    Predicate,
    SemiLinear,
    to_cnf,
)
from ..core.relation import Relation
from ..cpu.cost import CpuCostModel
from ..errors import SqlPlanError
from ..gpu.cost import GpuCostModel
from .ast import (
    AggregateFunc,
    AggregateItem,
    ColumnItem,
    SelectStatement,
    StarItem,
)


class DeviceChoice(enum.Enum):
    GPU = "gpu"
    CPU = "cpu"
    AUTO = "auto"


def predicate_columns(predicate: Predicate) -> set[str]:
    """All column names referenced by a predicate."""
    if isinstance(predicate, Comparison):
        return {predicate.column}
    if isinstance(predicate, Between):
        return {predicate.column}
    if isinstance(predicate, SemiLinear):
        return set(predicate.columns)
    if isinstance(predicate, Not):
        return predicate_columns(predicate.child)
    if isinstance(predicate, (And, Or)):
        names: set[str] = set()
        for child in predicate.children:
            names |= predicate_columns(child)
        return names
    raise SqlPlanError(
        f"unsupported predicate type {type(predicate).__name__}"
    )


@dataclasses.dataclass
class QueryPlan:
    """A validated statement plus per-device cost estimates."""

    statement: SelectStatement
    relation: Relation
    device: DeviceChoice
    estimated_gpu_s: float
    estimated_cpu_s: float

    @property
    def chosen_device(self) -> DeviceChoice:
        if self.device is not DeviceChoice.AUTO:
            return self.device
        if self.estimated_gpu_s <= self.estimated_cpu_s:
            return DeviceChoice.GPU
        return DeviceChoice.CPU

    def explain(self) -> str:
        lines = [
            f"table: {self.relation.name} "
            f"({self.relation.num_records} records)",
            f"items: {[item.label for item in self.statement.items]}",
            f"where: {self.statement.where!r}",
            f"estimated gpu: {self.estimated_gpu_s * 1e3:.3f} ms",
            f"estimated cpu: {self.estimated_cpu_s * 1e3:.3f} ms",
            f"device: {self.chosen_device.value}",
        ]
        return "\n".join(lines)


class Planner:
    """Validates statements against a relation and prices both devices."""

    def __init__(
        self,
        gpu_cost: GpuCostModel | None = None,
        cpu_cost: CpuCostModel | None = None,
    ):
        self.gpu_cost = gpu_cost or GpuCostModel()
        self.cpu_cost = cpu_cost or CpuCostModel()

    def plan(
        self,
        statement: SelectStatement,
        relation: Relation,
        device: DeviceChoice = DeviceChoice.AUTO,
        right_relation: Relation | None = None,
    ) -> QueryPlan:
        if statement.join is not None:
            if right_relation is None:
                raise SqlPlanError(
                    "join plans need the right-hand relation"
                )
            self._validate_join(statement, relation, right_relation)
            gpu_s, cpu_s = self._estimate_join(relation, right_relation)
        else:
            self._validate(statement, relation)
            gpu_s, cpu_s = self._estimate(statement, relation)
        return QueryPlan(
            statement=statement,
            relation=relation,
            device=device,
            estimated_gpu_s=gpu_s,
            estimated_cpu_s=cpu_s,
        )

    def _validate_join(
        self,
        statement: SelectStatement,
        left: Relation,
        right: Relation,
    ) -> None:
        join = statement.join
        if statement.where is not None:
            raise SqlPlanError(
                "WHERE clauses on JOIN queries are not supported"
            )
        if statement.group_by is not None:
            raise SqlPlanError(
                "GROUP BY on JOIN queries is not supported"
            )
        for relation, column in (
            (left, join.left_column),
            (right, join.right_column),
        ):
            if column not in relation:
                raise SqlPlanError(
                    f"unknown join column {column!r} in table "
                    f"{relation.name!r}"
                )
            if not relation.column(column).is_integer:
                raise SqlPlanError(
                    "join columns must be integer (bucketed GPU "
                    "histogram pruning)"
                )
        tables = {left.name, right.name}
        for item in statement.items:
            if isinstance(item, AggregateItem):
                if item.func is not AggregateFunc.COUNT:
                    raise SqlPlanError(
                        "JOIN queries support COUNT(*) and projected "
                        "qualified columns only"
                    )
                continue
            if isinstance(item, StarItem):
                continue
            if item.table is None:
                raise SqlPlanError(
                    f"join projections must qualify columns "
                    f"(got {item.column!r})"
                )
            if item.table not in tables:
                raise SqlPlanError(
                    f"unknown table {item.table!r} in select list"
                )
            target = left if item.table == left.name else right
            if item.column not in target:
                raise SqlPlanError(
                    f"unknown column {item.column!r} in table "
                    f"{item.table!r}"
                )

    def _estimate_join(
        self, left: Relation, right: Relation
    ) -> tuple[float, float]:
        gpu_model, cpu_model = self.gpu_cost, self.cpu_cost
        buckets = 32
        gpu = 0.0
        for relation in (left, right):
            records = relation.num_records
            copy = gpu_model.quad_pass_time_s(records, instructions=3)
            copy += (
                records
                * gpu_model.depth_write_penalty_clocks
                / gpu_model.fragments_per_second
            )
            # Histogram + extraction: two bucket sweeps.
            gpu += 2 * buckets * (
                copy / buckets + gpu_model.quad_pass_time_s(records)
                + gpu_model.occlusion_sync_latency_s
            )
            gpu += records / gpu_model.readback_bandwidth
        # Sort-probe equi-join: ~30 ns/record on both inputs.
        cpu = (left.num_records + right.num_records) * 30e-9
        return gpu, cpu

    # -- validation ---------------------------------------------------------

    def _validate(
        self, statement: SelectStatement, relation: Relation
    ) -> None:
        for item in statement.items:
            if isinstance(item, StarItem):
                continue
            column = item.column
            if isinstance(item, AggregateItem) and column is None:
                continue
            if column not in relation:
                raise SqlPlanError(
                    f"unknown column {column!r} in table "
                    f"{relation.name!r}"
                )
            if isinstance(item, AggregateItem):
                target = relation.column(column)
                needs_integer = item.func in (
                    AggregateFunc.SUM,
                    AggregateFunc.AVG,
                    AggregateFunc.MIN,
                    AggregateFunc.MAX,
                    AggregateFunc.MEDIAN,
                )
                if needs_integer and not target.supports_bit_slicing:
                    raise SqlPlanError(
                        f"{item.func.value}({column}) requires an integer "
                        "or fixed-point column (bit-sliced GPU "
                        "aggregation)"
                    )
        if statement.where is not None:
            unknown = predicate_columns(statement.where) - set(
                relation.column_names
            )
            if unknown:
                raise SqlPlanError(
                    f"unknown columns in WHERE: {sorted(unknown)}"
                )
            # Surface CNF blowup at plan time rather than execution time.
            to_cnf(statement.where)
        if statement.group_by is not None:
            self._validate_group_by(statement, relation)

    #: Largest group count a GROUP BY loop will expand to (one masked
    #: aggregation sweep per group).
    MAX_GROUPS = 256

    def _validate_group_by(
        self, statement: SelectStatement, relation: Relation
    ) -> None:
        name = statement.group_by
        if name not in relation:
            raise SqlPlanError(
                f"unknown GROUP BY column {name!r} in table "
                f"{relation.name!r}"
            )
        column = relation.column(name)
        if not column.is_integer:
            raise SqlPlanError(
                "GROUP BY requires an integer (categorical) column"
            )
        if not statement.is_aggregate:
            raise SqlPlanError(
                "GROUP BY queries must select aggregates"
            )
        for item in statement.items:
            if not isinstance(item, AggregateItem):
                raise SqlPlanError(
                    "GROUP BY select lists may only contain aggregates"
                )
        groups = np.unique(column.values).size
        if groups > self.MAX_GROUPS:
            raise SqlPlanError(
                f"GROUP BY over {groups} distinct values exceeds the "
                f"{self.MAX_GROUPS}-group limit"
            )

    # -- cost estimation -----------------------------------------------------

    def _estimate(
        self, statement: SelectStatement, relation: Relation
    ) -> tuple[float, float]:
        records = relation.num_records
        gpu = self._estimate_selection_gpu(statement.where, records)
        cpu = 0.0
        if statement.where is not None:
            cpu += self.cpu_cost.predicate_scan_s(
                records, predicate_terms(statement.where, self.cpu_cost)
            )
        for item in statement.items:
            gpu_item, cpu_item = self._estimate_item(
                item, relation, statement.where is not None
            )
            gpu += gpu_item
            cpu += cpu_item
        return gpu, cpu

    def _estimate_selection_gpu(
        self, predicate: Predicate | None, records: int
    ) -> float:
        if predicate is None:
            return 0.0
        model = self.gpu_cost
        total = 0.0
        for clause in to_cnf(predicate):
            for simple in clause:
                if isinstance(simple, SemiLinear):
                    total += model.quad_pass_time_s(records, instructions=4)
                else:
                    # copy pass (3-instruction program + slow depth path)
                    copy = model.quad_pass_time_s(records, instructions=3)
                    copy += (
                        records
                        * model.depth_write_penalty_clocks
                        / model.fragments_per_second
                    )
                    total += copy + model.quad_pass_time_s(records)
            total += model.quad_pass_time_s(records)  # clause cleanup
        total += model.occlusion_sync_latency_s
        return total

    def _estimate_item(
        self, item, relation: Relation, has_where: bool
    ) -> tuple[float, float]:
        records = relation.num_records
        gpu_model, cpu_model = self.gpu_cost, self.cpu_cost
        if isinstance(item, (ColumnItem, StarItem)):
            # Projection: the GPU must read the stencil mask back.
            readback = records / gpu_model.readback_bandwidth
            return readback, 0.0
        assert isinstance(item, AggregateItem)
        if item.func is AggregateFunc.COUNT:
            return (
                gpu_model.occlusion_sync_latency_s,
                cpu_model.count_s(records) if not has_where else 0.0,
            )
        bits = relation.column(item.column).bits
        if item.func in (AggregateFunc.SUM, AggregateFunc.AVG):
            passes = bits
            gpu = passes * gpu_model.quad_pass_time_s(
                records, instructions=5
            ) + gpu_model.occlusion_sync_latency_s
            return gpu, cpu_model.sum_s(records)
        # MIN / MAX / MEDIAN: bit-search order statistics.
        gpu = bits * (
            gpu_model.quad_pass_time_s(records)
            + gpu_model.occlusion_sync_latency_s
        )
        gpu += gpu_model.quad_pass_time_s(records, instructions=3)
        cpu = cpu_model.quickselect_s(records)
        if item.func in (AggregateFunc.MIN, AggregateFunc.MAX):
            cpu = cpu_model.sum_s(records)  # single SIMD min/max pass
        return gpu, cpu

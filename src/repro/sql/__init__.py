"""SQL front-end: the paper's ``SELECT A FROM T WHERE C`` query shape
(section 4) parsed, planned across the two devices, and executed.
"""

from .ast import (
    AggregateFunc,
    AggregateItem,
    ColumnItem,
    SelectStatement,
    StarItem,
)
from .executor import Database, QueryResult
from .lexer import Token, TokenType, tokenize
from .parser import parse
from .planner import DeviceChoice, Planner, QueryPlan, predicate_columns

#: Preferred spelling for the device argument of
#: :meth:`Database.query` / :meth:`Database.plan`:
#: ``Device.GPU``, ``Device.CPU``, ``Device.AUTO``.
Device = DeviceChoice

__all__ = [
    "AggregateFunc",
    "AggregateItem",
    "ColumnItem",
    "Database",
    "Device",
    "DeviceChoice",
    "Planner",
    "QueryPlan",
    "QueryResult",
    "SelectStatement",
    "StarItem",
    "Token",
    "TokenType",
    "parse",
    "predicate_columns",
    "tokenize",
]

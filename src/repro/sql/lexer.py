"""SQL lexer for the supported query subset.

Tokenizes the paper's query shape (section 4):

    SELECT A FROM T WHERE C

with aggregates in ``A`` and boolean predicate combinations in ``C``.
Case-insensitive keywords, ``--`` line comments, integer and decimal
literals.
"""

from __future__ import annotations

import dataclasses
import enum

from ..errors import SqlSyntaxError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "BETWEEN",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "MEDIAN",
    "AS",
    "GROUP",
    "BY",
    "JOIN",
    "ON",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    OPERATOR = "operator"  # = != <> < <= > >=
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    STAR = "*"
    EOF = "eof"


@dataclasses.dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word


_OPERATOR_STARTS = "=<>!"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if source.startswith("--", i):
            newline = source.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, ch, i))
            i += 1
        elif ch == ")":
            tokens.append(Token(TokenType.RPAREN, ch, i))
            i += 1
        elif ch == ",":
            tokens.append(Token(TokenType.COMMA, ch, i))
            i += 1
        elif ch == "." and not (
            i + 1 < length and source[i + 1].isdigit()
        ):
            tokens.append(Token(TokenType.DOT, ch, i))
            i += 1
        elif ch == "*":
            tokens.append(Token(TokenType.STAR, ch, i))
            i += 1
        elif ch in _OPERATOR_STARTS:
            text, width = _lex_operator(source, i)
            tokens.append(Token(TokenType.OPERATOR, text, i))
            i += width
        elif ch.isdigit() or (
            ch in "+-." and i + 1 < length and source[i + 1].isdigit()
        ):
            text, width = _lex_number(source, i)
            tokens.append(Token(TokenType.NUMBER, text, i))
            i += width
        elif ch.isalpha() or ch == "_":
            text, width = _lex_word(source, i)
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, text, i))
            i += width
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _lex_operator(source: str, start: int) -> tuple[str, int]:
    two = source[start : start + 2]
    if two in ("<=", ">=", "!=", "<>"):
        return ("!=" if two == "<>" else two), 2
    one = source[start]
    if one in ("=", "<", ">"):
        return one, 1
    raise SqlSyntaxError(f"bad operator {one!r}", position=start)


def _lex_number(source: str, start: int) -> tuple[str, int]:
    i = start
    if source[i] in "+-":
        i += 1
    seen_digit = seen_dot = False
    while i < len(source):
        ch = source[i]
        if ch.isdigit():
            seen_digit = True
        elif ch == "." and not seen_dot:
            seen_dot = True
        else:
            break
        i += 1
    if not seen_digit:
        raise SqlSyntaxError("malformed number", position=start)
    return source[start:i], i - start


def _lex_word(source: str, start: int) -> tuple[str, int]:
    i = start
    while i < len(source) and (source[i].isalnum() or source[i] == "_"):
        i += 1
    return source[start:i], i - start

"""The typed shard-combiner table: every host-side merge, declared.

:class:`ShardedExecutor` merges per-shard partial results with the
binary :meth:`CombinerSpec.combine` declared here (via :func:`fold`),
so the table *is* the code path — not documentation that can drift.
That makes hazard H110 (:func:`repro.analysis.race.verify_combiners`)
meaningful: a spec with ``ordered=False`` may in principle be folded
in pool-completion order, so the checker proves it commutative and
associative on the spec's ``samples``; a spec with ``ordered=True``
(concatenations, whose result deliberately follows shard order) is
exempt because :meth:`~repro.shard.sharded.ShardedDevice.map` joins
futures in shard order, making the fold order deterministic by
construction.

``samples`` are representative per-shard partial values (at least
three, four for the permutation sweep) in the exact shape the
executor folds: ints for counts, ``(sum, count)`` pairs for AVG,
per-predicate count lists for selectivities, bucket-count arrays for
histograms.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np


def _elementwise_sum(
    left: typing.Sequence[int], right: typing.Sequence[int]
) -> list[int]:
    return [int(a) + int(b) for a, b in zip(left, right)]


def _bucket_sum(left: typing.Any, right: typing.Any) -> np.ndarray:
    return np.asarray(left, dtype=np.int64) + np.asarray(
        right, dtype=np.int64
    )


def _pair_sum(
    left: tuple[int, int], right: tuple[int, int]
) -> tuple[int, int]:
    return (left[0] + right[0], left[1] + right[1])


def _concat(left: typing.Any, right: typing.Any) -> list:
    return list(left) + list(right)


@dataclasses.dataclass(frozen=True)
class CombinerSpec:
    """One host-side merge: how two shards' partials become one."""

    #: The schedule op this combiner merges (``COMBINERS`` key).
    op: str
    #: One-line description (rendered by ``Database.explain`` and
    #: carried on every fan-out result).
    description: str
    #: True when the fold deliberately depends on shard order
    #: (concatenations); such specs are exempt from the H110
    #: commutativity/associativity check but *must* be folded in shard
    #: order — which ``ShardedDevice.map`` guarantees.
    ordered: bool
    #: Representative per-shard partials for the symbolic check.
    samples: tuple[typing.Any, ...]
    combine_fn: typing.Callable[[typing.Any, typing.Any], typing.Any]

    def combine(self, left: typing.Any, right: typing.Any) -> typing.Any:
        return self.combine_fn(left, right)

    def fold(self, values: typing.Sequence[typing.Any]) -> typing.Any:
        """Left fold of ``combine`` over per-shard values (shard
        order — the order :meth:`ShardedDevice.map` returns)."""
        if not values:
            raise ValueError(f"combiner {self.op!r} folded no values")
        accumulator = values[0]
        for value in values[1:]:
            accumulator = self.combine_fn(accumulator, value)
        return accumulator


_SEARCH_DESCRIPTION = (
    "distributed bit search: sum per-shard occlusion counts per round"
)

#: Every combiner the sharded executor can apply, in op order.
COMBINER_SPECS: tuple[CombinerSpec, ...] = (
    CombinerSpec(
        op="select",
        description=(
            "concatenate per-shard record ids (+ shard start offset)"
        ),
        ordered=True,
        samples=([0, 3], [1], [2, 5]),
        combine_fn=_concat,
    ),
    CombinerSpec(
        op="count",
        description="sum per-shard counts",
        ordered=False,
        samples=(0, 1, 5, 7),
        combine_fn=lambda a, b: int(a) + int(b),
    ),
    CombinerSpec(
        op="sum",
        description="sum per-shard partial sums",
        ordered=False,
        samples=(0, -3, 5.5, 7),
        combine_fn=lambda a, b: a + b,
    ),
    CombinerSpec(
        op="average",
        description="weighted merge of per-shard (sum, count) pairs",
        ordered=False,
        samples=((0, 0), (10, 2), (7, 1), (3, 3)),
        combine_fn=_pair_sum,
    ),
    CombinerSpec(
        op="selectivities",
        description="element-wise sum of per-shard counts",
        ordered=False,
        samples=([0, 1], [2, 3], [5, 0], [1, 1]),
        combine_fn=_elementwise_sum,
    ),
    CombinerSpec(
        op="histogram",
        description="element-wise sum of per-shard bucket counts",
        ordered=False,
        samples=((0, 1, 2), (3, 0, 1), (2, 2, 2), (1, 0, 0)),
        combine_fn=_bucket_sum,
    ),
    CombinerSpec(
        op="kth_largest",
        description=_SEARCH_DESCRIPTION,
        ordered=False,
        samples=(0, 1, 5, 7),
        combine_fn=lambda a, b: int(a) + int(b),
    ),
    CombinerSpec(
        op="kth_smallest",
        description=_SEARCH_DESCRIPTION,
        ordered=False,
        samples=(0, 1, 5, 7),
        combine_fn=lambda a, b: int(a) + int(b),
    ),
    CombinerSpec(
        op="median",
        description=_SEARCH_DESCRIPTION,
        ordered=False,
        samples=(0, 1, 5, 7),
        combine_fn=lambda a, b: int(a) + int(b),
    ),
    CombinerSpec(
        op="quantiles",
        description=_SEARCH_DESCRIPTION,
        ordered=False,
        samples=(0, 1, 5, 7),
        combine_fn=lambda a, b: int(a) + int(b),
    ),
    CombinerSpec(
        op="minimum",
        description="min over per-shard minima",
        ordered=False,
        samples=(5, 1, 9, 3),
        combine_fn=min,
    ),
    CombinerSpec(
        op="maximum",
        description="max over per-shard maxima",
        ordered=False,
        samples=(5, 1, 9, 3),
        combine_fn=max,
    ),
    CombinerSpec(
        op="top_k",
        description=(
            "distributed threshold search + concatenated per-shard "
            "marks"
        ),
        ordered=True,
        samples=([0, 3], [1], [2, 5]),
        combine_fn=_concat,
    ),
)

#: op -> spec, for the executor's fold sites.
SPEC_BY_OP: dict[str, CombinerSpec] = {
    spec.op: spec for spec in COMBINER_SPECS
}


def fold(op: str, values: typing.Sequence[typing.Any]) -> typing.Any:
    """Fold per-shard partials with the declared combiner for ``op``."""
    return SPEC_BY_OP[op].fold(values)

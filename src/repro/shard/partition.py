"""Row-wise partitioning of one relation across N simulated devices.

A shard is a contiguous run of records ``[start, stop)``; shard *i*'s
engine sees a sub-relation whose columns are value slices of the parent
columns with **identical metadata** — bit width, domain, bias encoding
and fraction bits are copied verbatim rather than re-derived from the
slice.  That invariant is what makes the host-side combiners exact:

* the stored (GPU-side) representation of a value is the same on every
  shard, so the distributed bit search can broadcast one stored-domain
  candidate and sum per-shard occlusion counts;
* normalization (``value / 2**bits``) and clamping use the parent
  domain, so per-shard selections answer exactly the parent predicate;
* histogram edges derive from ``(lo, bits)`` alone and therefore come
  out identical on every shard.

``Relation.take`` deliberately re-derives metadata (it builds *new*
relations from selections); :func:`slice_relation` exists because a
shard must instead be a window onto the parent's representation.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.column import Column
from ..core.relation import Relation
from ..errors import QueryError

#: Environment variable selecting the default shard count for engines
#: built with ``shards=None`` (mirrors ``REPRO_JIT``).
SHARDS_ENV = "REPRO_SHARDS"

#: Environment variable capping the shard thread pool (defaults to one
#: worker thread per shard — each simulated device runs in parallel).
THREADS_ENV = "REPRO_SHARD_THREADS"


def resolve_shards(shards: int | None) -> int:
    """The effective shard count: an explicit value wins, ``None``
    follows ``REPRO_SHARDS`` (default 1 — single-device, bit-identical
    to the unsharded engine)."""
    if shards is None:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        shards = int(raw) if raw else 1
    shards = int(shards)
    if shards < 1:
        raise QueryError(f"shards must be >= 1, got {shards}")
    return shards


def pool_threads(shards: int) -> int:
    """Worker threads driving ``shards`` devices concurrently: one per
    shard unless ``REPRO_SHARD_THREADS`` caps the pool."""
    raw = os.environ.get(THREADS_ENV, "").strip()
    if not raw:
        return max(1, int(shards))
    cap = int(raw)
    if cap < 1:
        raise QueryError(
            f"{THREADS_ENV} must be >= 1, got {cap}"
        )
    return max(1, min(int(shards), cap))


def shard_bounds(
    num_records: int, shards: int
) -> list[tuple[int, int]]:
    """Contiguous near-equal ``[start, stop)`` ranges, one per shard.

    The first ``num_records % shards`` shards hold one extra record, so
    sizes differ by at most one — the balanced partition whose slowest
    shard bounds the modeled parallel time.
    """
    if shards < 1:
        raise QueryError(f"shards must be >= 1, got {shards}")
    if num_records < shards:
        raise QueryError(
            f"cannot split {num_records} records across {shards} "
            "shards (every shard needs at least one record)"
        )
    base, extra = divmod(num_records, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def slice_relation(
    relation: Relation, start: int, stop: int
) -> Relation:
    """The ``[start, stop)`` record window of ``relation``, with every
    column's metadata (bits, domain, bias, fraction bits) preserved
    verbatim — see the module docstring for why ``Relation.take`` is
    not the right tool here."""
    if not 0 <= start < stop <= relation.num_records:
        raise QueryError(
            f"shard window [{start}, {stop}) outside "
            f"[0, {relation.num_records})"
        )
    columns = []
    for name in relation.column_names:
        source = relation.column(name)
        columns.append(Column(
            name,
            np.ascontiguousarray(source.values[start:stop]),
            is_integer=source.is_integer,
            bits=source.bits,
            lo=source.lo,
            hi=source.hi,
            fraction_bits=source.fraction_bits,
            bias=source.bias,
        ))
    return Relation(relation.name, columns)

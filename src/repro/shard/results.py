"""Fan-out result objects: per-shard results plus the host combiner.

A sharded operation issues the *same* passes as the single-device
algorithm on every shard, concurrently.  Its cost therefore has two
faces:

* **work** — the passes issued across all shards (``pass_count``,
  ``stats`` and the inherited ``copy``/``compute`` windows merge the
  per-shard windows);
* **latency** — the modeled parallel time: the slowest shard's
  ``GpuTime`` (the critical path) plus the host-side combiner cost.

``total_time``/``time_ms`` report latency — that is the number the
figure workloads and the service throughput care about, and the one
that shows the near-linear per-shard reduction.  The per-shard results
stay attached under ``shard_results`` so the work numbers remain
auditable.

The combiner itself is host arithmetic (summing counts, concatenating
id arrays); it is priced at a deterministic nominal
:data:`COMBINE_MS_PER_SHARD` per shard result so committed snapshots do
not depend on host speed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.engine import GpuOpResult, Selection
from ..gpu.cost import GpuCostModel, GpuTime, ZERO_TIME

#: Modeled host-side combiner cost per shard result merged (10 us): a
#: nominal bus/CPU charge keeping snapshot numbers deterministic.
COMBINE_MS_PER_SHARD = 0.01


class _ParallelCost:
    """Cost-accessor overrides shared by the fan-out result types.

    Expects ``shard_results`` (per-shard ``GpuOpResult``-likes, shard
    order), ``combiner_ms`` and ``model`` attributes on the host class.
    """

    def total_time(self, model: GpuCostModel) -> GpuTime:
        """The modeled parallel critical path: the slowest shard."""
        times = [
            result.total_time(model) for result in self.shard_results
        ]
        if not times:
            return ZERO_TIME
        return max(times, key=lambda time: time.total_ms)

    @property
    def time_ms(self) -> float:
        """Critical-path milliseconds plus the host combiner charge."""
        model = self.model or GpuCostModel()
        return self.total_time(model).total_ms + self.combiner_ms


@dataclasses.dataclass
class ShardedOpResult(_ParallelCost, GpuOpResult):
    """One combined answer from N per-shard executions.

    The inherited ``copy``/``compute`` windows hold the *merged*
    per-shard statistics (total work issued); ``total_time`` /
    ``time_ms`` report the parallel critical path instead — see the
    module docstring.
    """

    #: Per-shard results in shard order (degraded shards contribute an
    #: empty-stats placeholder — their answer came from the CPU).
    shard_results: list = dataclasses.field(default_factory=list)
    #: Human-readable description of the host combiner applied.
    combiner: str = ""
    #: Modeled host-side combine cost (``COMBINE_MS_PER_SHARD`` x N).
    combiner_ms: float = 0.0
    #: Indices of shards whose GPU path failed for good this operation
    #: and were recomputed on the CPU (empty on the clean path).
    degraded_shards: tuple[int, ...] = ()


@dataclasses.dataclass
class ShardedSelection(_ParallelCost, Selection):
    """A selection fanned out across shards.

    ``value`` is the combined match count.  Record ids are the
    concatenation of the per-shard ids offset by each shard's start
    row, read lazily exactly like a single-device
    :class:`~repro.core.engine.Selection` (each per-shard read
    re-activates that shard's context).  Staleness is per shard: the
    selection is stale as soon as *any* shard's mask was overwritten.
    """

    #: Per-shard :class:`Selection` objects in shard order.
    shard_results: list = dataclasses.field(default_factory=list)
    #: Per-shard start rows (added to shard-local record ids).
    offsets: tuple[int, ...] = ()
    combiner: str = ""
    combiner_ms: float = 0.0
    degraded_shards: tuple[int, ...] = ()

    @property
    def is_stale(self) -> bool:
        if self._cached_ids is not None:
            return False
        return any(part.is_stale for part in self.shard_results)

    def _gather_ids(self) -> np.ndarray:
        parts = [
            np.asarray(part.record_ids(), dtype=np.int64) + offset
            for part, offset in zip(self.shard_results, self.offsets)
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def materialize(self) -> "ShardedSelection":
        if self._cached_ids is None:
            for part in self.shard_results:
                part.materialize()
            self._cached_ids = self._gather_ids()
        return self

    def record_ids(self) -> np.ndarray:
        if self._cached_ids is not None:
            return self._cached_ids
        return self._gather_ids()

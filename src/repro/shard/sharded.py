"""N simulated devices behind one engine: the fan-out/combine layer.

:class:`ShardedDevice` partitions an engine's relation into contiguous
row ranges (:func:`~repro.shard.partition.shard_bounds`) and builds one
fully independent :class:`~repro.core.engine.GpuEngine` per range.  Each
shard engine owns its own simulated FX-5900 and a **disjoint generation
band**: its :class:`~repro.gpu.context.ContextScheduler` starts at
``base_cid = (i + 1) * SHARD_CID_STRIDE``, so no stencil/depth
generation minted on one shard can ever equal a generation minted on
another shard (or on the host engine, which keeps band 0).  That is the
runtime half of the H108 shard-aliasing guarantee
(:mod:`repro.analysis.sharding` is the static half).

:class:`ShardedExecutor` is the fan-out twin of
:class:`~repro.plan.executor.ScheduleExecutor`: it takes the *parent*
engine's compiled :class:`~repro.plan.passes.PassSchedule` and runs the
operation as N per-shard schedules on a thread pool, then merges on the
host with the op's typed combiner:

* COUNT / SUM / MIN / MAX / AVG merge trivially (sums, extrema,
  weighted ``(sum, count)`` pairs);
* selections, selectivities and histograms concatenate / element-wise
  sum the per-shard results;
* k-th largest (and every order statistic built on it) becomes a
  **distributed bit-wise binary search**: each round broadcasts the
  candidate prefix ``x + 2**i`` to every shard, renders one
  occlusion-counted comparison quad per shard, and sums the per-shard
  counts before deciding the bit (Lemma 1 applies to the summed count).
  Every shard issues exactly the single-device figure-7 pass sequence —
  one depth copy plus ``bits`` comparison passes — over ``1/N`` of the
  records, which is where the near-linear modeled speedup comes from.

Fault semantics: a shard whose GPU path keeps failing (its resilient
retries exhausted, or the shard was :meth:`~ShardedDevice.kill`\\ ed)
**degrades to a CPU recompute of that shard only** — the query never
fails and never mixes in a corrupted partial answer.  Deadlines are
thread-local, so the dispatching thread's deadline is re-installed
inside every worker; a :class:`~repro.errors.QueryTimeoutError` is
never degraded, exactly like the single-device engine.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

import numpy as np

from .. import sanitize
from ..core import aggregates
from ..core.aggregates import _configure_valid_stencil
from ..core.compare import compare_pass, copy_to_depth
from ..core.engine import (
    GpuOpResult,
    Selection,
    TopK,
    split_copy_stats,
)
from ..errors import (
    DeviceLostError,
    GpuError,
    QueryError,
    QueryTimeoutError,
)
from ..faults.deadline import current_deadline, use_deadline
from ..gpu.counters import PipelineStats
from ..gpu.types import CompareFunc, StencilOp
from .combiners import COMBINER_SPECS, fold
from .partition import pool_threads, shard_bounds, slice_relation
from .results import (
    COMBINE_MS_PER_SHARD,
    ShardedOpResult,
    ShardedSelection,
)

#: The distributed bit-search ops: their declared combiner is the
#: per-round occlusion-count sum applied in :meth:`_count_round`.
_SEARCH_OPS = frozenset(
    {"kth_largest", "kth_smallest", "median", "quantiles"}
)

#: Context-id stride between shard generation bands.  Shard *i* owns
#: cids ``[(i + 1) * STRIDE, (i + 2) * STRIDE)`` — a million virtual
#: contexts per shard before neighboring bands could meet — while the
#: host engine keeps band 0.
SHARD_CID_STRIDE = 1 << 20

#: One-line combiner description per schedule op (rendered by
#: ``Database.explain`` and carried on every fan-out result).
#: Derived from the typed combiner table (:mod:`repro.shard.combiners`)
#: so the rendered description can never drift from the fold the
#: executor actually applies — and so hazard H110 checks the real
#: merge, not a doc string.
COMBINERS = {spec.op: spec.description for spec in COMBINER_SPECS}


@dataclasses.dataclass
class Shard:
    """One partition: a row range and the engine that owns it."""

    index: int
    start: int
    stop: int
    engine: object
    #: Deterministic kill switch (chaos tests, the bench harness):
    #: while True, every GPU task on this shard raises
    #: :class:`DeviceLostError` and the shard degrades to the CPU.
    forced_dead: bool = False

    @property
    def name(self) -> str:
        return f"shard-{self.index}"

    @property
    def num_records(self) -> int:
        return self.stop - self.start


class ShardedDevice:
    """The shard pool: N per-shard engines plus the thread pool and the
    context-propagation map that keep them in lockstep with the parent
    engine."""

    def __init__(self, engine: Any, shards: int) -> None:
        from ..core.engine import GpuEngine

        self.parent = engine
        relation = engine.relation
        self.shards: list[Shard] = []
        for index, (start, stop) in enumerate(
            shard_bounds(relation.num_records, shards)
        ):
            shard_engine = GpuEngine(
                slice_relation(relation, start, stop),
                cost_model=engine.cost_model,
                layout=engine.layout,
                executor=engine.executor,
                fusion=engine.fusion,
                debug=engine.debug,
                jit=engine.device.jit,
                shards=1,
                context_band=(index + 1) * SHARD_CID_STRIDE,
            )
            # Shard engines must not trace: the tracer is a stack and
            # shard work runs on pool threads.  The parent records
            # per-shard summary events after the join instead.  Set
            # explicitly — the engine ctor falls back to the
            # process-wide tracer when given None.
            shard_engine.tracer = None
            self.shards.append(
                Shard(index, start, stop, shard_engine)
            )
        self._pool: ThreadPoolExecutor | None = None
        #: Parent context cid -> per-shard mirror contexts.
        self._contexts: dict[int, list] = {}
        if engine.debug:
            from ..analysis import verify_shard_fanout

            verify_shard_fanout(self.bands()).raise_if_failed()

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def threads(self) -> int:
        """Worker threads the pool runs (see
        :func:`~repro.shard.partition.pool_threads`)."""
        return pool_threads(len(self.shards))

    def bands(self) -> list:
        """The generation-band descriptors the H108 verifier checks
        (host band 0 plus one band per shard)."""
        from ..analysis.sharding import ShardBand

        bands = [
            ShardBand(
                owner="host",
                base_cid=self.parent.contexts.base_cid,
                cid_span=SHARD_CID_STRIDE,
            )
        ]
        for shard in self.shards:
            bands.append(
                ShardBand(
                    owner=shard.name,
                    base_cid=shard.engine.contexts.base_cid,
                    cid_span=SHARD_CID_STRIDE,
                )
            )
        return bands

    # -- chaos hooks --------------------------------------------------------

    def kill(self, index: int) -> None:
        """Mark one shard's device lost (deterministically): its next
        GPU task raises :class:`DeviceLostError` and the shard serves
        CPU recomputes until :meth:`revive`."""
        self.shards[index].forced_dead = True

    def revive(self, index: int) -> None:
        """Undo :meth:`kill`."""
        self.shards[index].forced_dead = False

    # -- the pool -----------------------------------------------------------

    def map(self, fn: Callable[[Shard], Any]) -> list:
        """Run ``fn(shard)`` for every shard concurrently; results come
        back in shard order.

        The calling thread's deadline (thread-local) is re-installed in
        every worker so cooperative cancellation crosses the pool.  All
        futures are always joined; the first exception *in shard order*
        is then re-raised.
        """
        deadline = current_deadline()

        def worker(shard: Shard, token: Any) -> Any:
            # Submit→begin and end→join are the pool's happens-before
            # edges: everything the submitter did is visible to the
            # worker, everything the worker did is visible after the
            # host joins its future.
            sanitize.task_begin(token)
            try:
                if deadline is None:
                    return fn(shard)
                with use_deadline(deadline):
                    return fn(shard)
            finally:
                sanitize.task_end(token)

        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.threads,
                thread_name_prefix="repro-shard",
            )
        futures = []
        for shard in self.shards:
            token = sanitize.fork()
            futures.append(
                (self._pool.submit(worker, shard, token), token)
            )
        results: list = []
        error: BaseException | None = None
        for future, token in futures:
            try:
                results.append(future.result())
            # Every future is joined before the first error (in shard
            # order) is re-raised below — nothing is swallowed.
            # repro-lint: disable=bare-except
            except BaseException as exc:
                results.append(None)
                if error is None:
                    error = exc
            # The worker ran (successfully or not) — either way its
            # writes are ordered before everything after this join.
            sanitize.task_join(token)
        if error is not None:
            raise error
        return results

    # -- context propagation ------------------------------------------------

    def create_context(self, parent_context: Any) -> None:
        """Mirror a parent-engine context onto every shard (called by
        ``GpuEngine.create_context``)."""
        self._contexts[parent_context.cid] = [
            shard.engine.create_context(
                f"{parent_context.name}@{shard.name}"
            )
            for shard in self.shards
        ]

    def _mirrors(self, parent_context: Any) -> list:
        if (
            parent_context is None
            or parent_context is self.parent.contexts.default
        ):
            return [shard.engine.contexts.default for shard in self.shards]
        try:
            return self._contexts[parent_context.cid]
        except KeyError:
            raise QueryError(
                f"context {parent_context.name!r} was not created "
                "through this sharded engine"
            ) from None

    def activate_context(self, parent_context: Any) -> None:
        for shard, mirror in zip(
            self.shards, self._mirrors(parent_context)
        ):
            shard.engine.activate_context(mirror)

    def release_context(self, parent_context: Any) -> None:
        for shard, mirror in zip(
            self.shards, self._mirrors(parent_context)
        ):
            shard.engine.release_context(mirror)
        self._contexts.pop(parent_context.cid, None)


@dataclasses.dataclass
class _ShardState:
    """Per-shard mutable state for one fanned-out operation."""

    shard: Shard
    op: str
    column_name: str | None = None
    predicate: object = None
    #: top_k only: write an all-valid mask when there is no WHERE.
    ensure_mask: bool = False
    #: True while the shard's GPU holds the prepared selection mask and
    #: depth copy; cleared by faults so retries rebuild both.
    prepared: bool = False
    valid: int | None = None
    valid_count: int = 0
    texture: object = None
    scale: float = 1.0
    channel: int = 0
    #: CPU mirror, populated lazily on degradation only.
    cpu_mask: np.ndarray | None = None
    cpu_stored: np.ndarray | None = None
    cpu_values: np.ndarray | None = None


class ShardedExecutor:
    """Runs one parent :class:`PassSchedule` as N per-shard executions
    plus a host combiner.  Like :class:`ScheduleExecutor` it is
    stateless between operations — construct one per call."""

    _DRIVERS = {
        "select": "_run_select",
        "count": "_run_count",
        "sum": "_run_sum",
        "average": "_run_average",
        "selectivities": "_run_selectivities",
        "histogram": "_run_histogram",
        "quantiles": "_run_search",
        "kth_largest": "_run_search",
        "kth_smallest": "_run_search",
        "minimum": "_run_search",
        "median": "_run_search",
        "top_k": "_run_top_k",
    }

    def __init__(self, engine: Any) -> None:
        self.engine = engine
        self.pool: ShardedDevice = engine.sharded
        #: shard index -> error string, for shards that fell back to
        #: the CPU during *this* operation.  Written by pool workers
        #: (concurrently) and read both by workers and, post-join, by
        #: the host — hence the lock.
        self._degraded: dict[int, str] = {}
        self._degraded_lock = sanitize.TrackedLock()

    # -- entry point --------------------------------------------------------

    def execute(self, schedule: Any, *, jit: bool | None = None) -> Any:
        name = self._DRIVERS.get(schedule.op)
        if name is None:
            raise QueryError(
                f"no execution driver for schedule op {schedule.op!r}; "
                "execute_schedule() runs the op-level schedules the "
                "repro.plan lowerings produce"
            )
        if schedule.payload is None:
            raise QueryError(
                f"schedule for {schedule.op!r} carries no execution "
                "payload; recompile it with repro.plan.compiler"
            )
        self.engine._verify_schedule(schedule)
        if jit is None:
            return self._dispatch(schedule)
        saved = [s.engine.device.jit for s in self.pool.shards]
        for shard in self.pool.shards:
            shard.engine.device.jit = bool(jit)
        try:
            return self._dispatch(schedule)
        finally:
            for shard, old in zip(self.pool.shards, saved):
                shard.engine.device.jit = old

    def _dispatch(self, schedule: Any) -> Any:
        # One stats window per shard per operation, opened host-side so
        # a shard that degrades before its first pass reports zero work
        # instead of a stale window.
        for shard in self.pool.shards:
            shard.engine.device.stats.reset()
        driver = getattr(self, self._DRIVERS[schedule.op])
        tracer = self.engine.tracer
        if tracer is None:
            return driver(schedule)
        span = tracer.begin(
            schedule.op,
            shards=len(self.pool.shards),
            table=schedule.table,
        )
        try:
            result = driver(schedule)
        except BaseException:
            tracer.end(span)
            raise
        model = self.engine.cost_model
        degraded = self._degraded_snapshot()
        for index, part in enumerate(result.shard_results):
            tracer.record_event(
                "shard",
                category="shard",
                shard=f"shard-{index}",
                modeled_ms=part.total_time(model).total_ms,
                passes=part.pass_count,
                degraded=index in result.degraded_shards,
            )
        for index in result.degraded_shards:
            tracer.record_event(
                "shard-degraded",
                category="shard",
                shard=f"shard-{index}",
                error=degraded.get(index, ""),
            )
        tracer.record_event(
            "shard-combine",
            category="shard",
            combiner=result.combiner,
            combiner_ms=result.combiner_ms,
        )
        tracer.end(span, modeled_ms=result.time_ms)
        return result

    # -- degradation --------------------------------------------------------

    def _shard_call(
        self, shard: Shard, gpu_fn: Callable, cpu_fn: Callable
    ) -> Any:
        """Run a shard task on its GPU, degrading that shard — and only
        that shard — to ``cpu_fn`` when the GPU path fails for good.

        ``gpu_fn`` must already carry its own resilient retries (engine
        methods do; custom bodies go through :meth:`_resilient`).  A
        :class:`QueryTimeoutError` always propagates: deadlines cancel
        the whole query, they do not degrade it.
        """
        if self._is_degraded(shard):
            return cpu_fn(shard)
        if shard.forced_dead:
            self._degrade(
                shard, DeviceLostError(f"{shard.name} device lost")
            )
            return cpu_fn(shard)
        try:
            return gpu_fn(shard)
        except GpuError as error:
            self._degrade(shard, error)
            return cpu_fn(shard)

    def _is_degraded(self, shard: Shard) -> bool:
        with self._degraded_lock:
            sanitize.note(self, "_degraded", sanitize.READ)
            return shard.index in self._degraded

    def _degraded_snapshot(self) -> dict[int, str]:
        with self._degraded_lock:
            sanitize.note(self, "_degraded", sanitize.READ)
            return dict(self._degraded)

    def _degrade(self, shard: Shard, error: Exception) -> None:
        with self._degraded_lock:
            sanitize.note(self, "_degraded", sanitize.WRITE)
            self._degraded[shard.index] = (
                f"{type(error).__name__}: {error}"
            )
        executor = self.engine.executor
        if executor is not None:
            executor.stats.record_fallback(shard.name)

    def _resilient(
        self, shard: Shard, fn: Callable, op: str
    ) -> Any:
        """The shard-task twin of ``GpuEngine._resilient``: per-attempt
        abort of dangling occlusion queries, plan invalidation on
        faults, resilient-executor retries when one is attached."""
        engine = shard.engine

        def attempt() -> Any:
            engine.device.abort_query()
            try:
                return fn()
            except GpuError:
                engine.plan.invalidate()
                raise
            except QueryTimeoutError:
                engine.device.abort_query()
                engine.plan.invalidate()
                raise

        executor = engine.executor
        if executor is None:
            return attempt()
        return executor.run(
            attempt, op=f"{shard.name}:{op}", tracer=None
        )

    def _guarded(self, state: _ShardState, body: Callable) -> Any:
        """Run ``body()`` against prepared GPU state, re-running
        :meth:`_prepare_search` first whenever a fault tore the
        prepared selection mask / depth copy down."""

        def run() -> Any:
            if not state.prepared:
                self._prepare_search(state)
            try:
                return body()
            except GpuError:
                state.prepared = False
                raise

        return self._resilient(state.shard, run, state.op)

    # -- CPU mirrors --------------------------------------------------------

    def _cpu_state(self, state: _ShardState) -> _ShardState:
        """Materialize the shard's stored-domain values and predicate
        mask on the host (degraded shards only)."""
        if state.cpu_mask is None:
            relation = state.shard.engine.relation
            if state.predicate is None:
                mask = np.ones(relation.num_records, dtype=bool)
            else:
                mask = np.asarray(
                    state.predicate.mask(relation), dtype=bool
                )
            state.cpu_mask = mask
            if state.column_name is not None:
                column = relation.column(state.column_name)
                state.cpu_stored = np.rint(
                    np.asarray(
                        column.stored_values(), dtype=np.float64
                    )
                ).astype(np.int64)
            else:
                state.cpu_stored = np.zeros(
                    relation.num_records, dtype=np.int64
                )
            state.cpu_values = state.cpu_stored[mask]
            state.valid_count = int(np.count_nonzero(mask))
        return state

    # -- result assembly ----------------------------------------------------

    def _combined(
        self, op: str, value: Any, parts: Any
    ) -> ShardedOpResult:
        return ShardedOpResult(
            value=value,
            copy=PipelineStats.merged([p.copy for p in parts]),
            compute=PipelineStats.merged([p.compute for p in parts]),
            model=self.engine.cost_model,
            shard_results=list(parts),
            combiner=COMBINERS[op],
            combiner_ms=COMBINE_MS_PER_SHARD * len(parts),
            degraded_shards=tuple(sorted(self._degraded_snapshot())),
        )

    def _harvest(
        self, states: list[_ShardState], value_of: Callable
    ) -> list:
        """Close every shard's stats window into a per-shard
        :class:`GpuOpResult` (degraded shards report the GPU work they
        did manage before falling back)."""
        parts = []
        for state in states:
            copy, compute = split_copy_stats(
                state.shard.engine.device.stats.snapshot()
            )
            state.shard.engine.device.stats.reset()
            parts.append(
                GpuOpResult(
                    value=value_of(state),
                    copy=copy,
                    compute=compute,
                    model=self.engine.cost_model,
                )
            )
        return parts

    # -- trivially-combined ops (per-shard engine methods) ------------------

    def _run_select(self, schedule: Any) -> Any:
        predicate = schedule.payload["predicate"]

        def cpu(shard: Shard) -> Selection:
            relation = shard.engine.relation
            ids = np.flatnonzero(
                np.asarray(predicate.mask(relation), dtype=bool)
            ).astype(np.int64)
            return Selection(
                value=int(ids.size),
                copy=PipelineStats(),
                compute=PipelineStats(),
                model=self.engine.cost_model,
                valid_stencil=1,
                total_records=relation.num_records,
                engine=None,
                _cached_ids=ids,
            )

        parts = self.pool.map(
            lambda shard: self._shard_call(
                shard, lambda s: s.engine.select(predicate), cpu
            )
        )
        return ShardedSelection(
            value=sum(part.count for part in parts),
            copy=PipelineStats.merged([p.copy for p in parts]),
            compute=PipelineStats.merged([p.compute for p in parts]),
            model=self.engine.cost_model,
            valid_stencil=1,
            total_records=self.engine.relation.num_records,
            engine=self.engine,
            shard_results=list(parts),
            offsets=tuple(s.start for s in self.pool.shards),
            combiner=COMBINERS["select"],
            combiner_ms=COMBINE_MS_PER_SHARD * len(parts),
            degraded_shards=tuple(sorted(self._degraded_snapshot())),
        )

    def _run_count(self, schedule: Any) -> Any:
        def cpu(shard: Shard) -> GpuOpResult:
            return GpuOpResult(
                value=shard.num_records,
                copy=PipelineStats(),
                compute=PipelineStats(),
                model=self.engine.cost_model,
            )

        parts = self.pool.map(
            lambda shard: self._shard_call(
                shard, lambda s: s.engine.aggregate("count"), cpu
            )
        )
        return self._combined(
            "count", fold("count", [int(part.value) for part in parts]),
            parts,
        )

    def _run_sum(self, schedule: Any) -> Any:
        column_name = schedule.payload["column"]
        predicate = schedule.payload.get("predicate")

        def cpu(shard: Shard) -> GpuOpResult:
            state = self._cpu_state(
                _ShardState(
                    shard, "sum",
                    column_name=column_name, predicate=predicate,
                )
            )
            column = shard.engine.relation.column(column_name)
            total = int(state.cpu_values.sum()) if state.valid_count else 0
            return GpuOpResult(
                value=column.sum_from_stored(total, state.valid_count),
                copy=PipelineStats(),
                compute=PipelineStats(),
                model=self.engine.cost_model,
            )

        # SUM is linear in the stored encoding: every shard folds its
        # own bias term, so the partial sums add up exactly.
        parts = self.pool.map(
            lambda shard: self._shard_call(
                shard,
                lambda s: s.engine.aggregate(
                    "sum", column_name, predicate=predicate
                ),
                cpu,
            )
        )
        return self._combined(
            "sum", fold("sum", [part.value for part in parts]), parts
        )

    def _run_average(self, schedule: Any) -> Any:
        column_name = schedule.payload["column"]
        predicate = schedule.payload.get("predicate")
        column = self.engine.relation.column(column_name)
        states = {
            shard.index: _ShardState(
                shard, "average",
                column_name=column_name, predicate=predicate,
            )
            for shard in self.pool.shards
        }

        def gpu_body(state: _ShardState) -> Any:
            # The single-device sum/average driver minus the division:
            # selection passes plus the bit-sliced Accumulator, with an
            # empty shard legitimately contributing (0, 0).
            engine = state.shard.engine
            texture, channel = engine.stored_texture(state.column_name)
            valid, valid_count = engine._selection_stencil(
                state.predicate
            )
            total = aggregates.accumulate(
                engine.device, texture,
                engine.relation.column(state.column_name).bits,
                channel=channel, valid_stencil=valid,
            )
            return int(total), int(valid_count)

        def gpu(shard: Shard) -> Any:
            state = states[shard.index]
            return self._resilient(
                shard, lambda: gpu_body(state), "average"
            )

        def cpu(shard: Shard) -> Any:
            state = self._cpu_state(states[shard.index])
            total = (
                int(state.cpu_values.sum()) if state.valid_count else 0
            )
            return total, state.valid_count

        partials = self.pool.map(
            lambda shard: self._shard_call(shard, gpu, cpu)
        )
        total, count = fold(
            "average", [tuple(part) for part in partials]
        )
        if count == 0:
            raise QueryError("AVG of an empty selection")
        value = column.sum_from_stored(total, count) / count
        parts = self._harvest(
            list(states.values()),
            lambda state: partials[state.shard.index],
        )
        return self._combined("average", value, parts)

    def _run_selectivities(self, schedule: Any) -> Any:
        predicates = schedule.payload["predicates"]

        def cpu(shard: Shard) -> GpuOpResult:
            relation = shard.engine.relation
            counts = [
                int(np.count_nonzero(p.mask(relation)))
                for p in predicates
            ]
            return GpuOpResult(
                value=counts,
                copy=PipelineStats(),
                compute=PipelineStats(),
                model=self.engine.cost_model,
            )

        parts = self.pool.map(
            lambda shard: self._shard_call(
                shard, lambda s: s.engine.selectivities(predicates), cpu
            )
        )
        combined = fold(
            "selectivities",
            [[int(count) for count in part.value] for part in parts],
        )
        return self._combined("selectivities", combined, parts)

    def _run_histogram(self, schedule: Any) -> Any:
        column_name = schedule.payload["column"]
        buckets = schedule.payload["buckets"]
        edges = schedule.payload["edges"]

        def cpu(shard: Shard) -> GpuOpResult:
            # The depth-bounds semantics of the fused sweep: bucket i
            # counts values in [edges[i], edges[i+1] - 1], domains
            # clamped exactly as column.clamp_to_domain does.
            column = shard.engine.relation.column(column_name)
            values = np.asarray(
                shard.engine.relation.column(column_name).values
            )
            counts = np.zeros(edges.size - 1, dtype=np.int64)
            for i in range(edges.size - 1):
                low = column.clamp_to_domain(int(edges[i]))
                high = column.clamp_to_domain(int(edges[i + 1] - 1))
                counts[i] = int(
                    np.count_nonzero((values >= low) & (values <= high))
                )
            return GpuOpResult(
                value=(edges, counts),
                copy=PipelineStats(),
                compute=PipelineStats(),
                model=self.engine.cost_model,
            )

        parts = self.pool.map(
            lambda shard: self._shard_call(
                shard,
                lambda s: s.engine.histogram(column_name, buckets),
                cpu,
            )
        )
        combined = fold(
            "histogram", [part.value[1] for part in parts]
        )
        return self._combined("histogram", (edges, combined), parts)

    # -- the distributed bit search -----------------------------------------

    def _prepare_search(self, state: _ShardState) -> None:
        """Per-shard GPU prep for order statistics: selection mask,
        color writes off, the attribute copied to the depth buffer
        (through the shard's fusion cache) and the valid-stencil test
        armed.  Idempotent — faults re-run it from scratch."""
        engine = state.shard.engine
        device = engine.device
        state.valid, state.valid_count = engine._selection_stencil(
            state.predicate
        )
        if state.ensure_mask and state.valid is None:
            # top_k with no WHERE: the mark phase needs a real mask, so
            # write an all-valid one, exactly like the single-device
            # driver.  This layer is the shards' scheduler: writes land
            # on the shard's private device between operations.
            # repro-lint: disable=unscheduled-stencil-write
            device.clear_stencil(1)
            state.valid = 1
        device.state.color_mask = (False, False, False, False)
        texture, scale, channel = engine.column_texture(
            state.column_name
        )
        state.texture, state.scale, state.channel = (
            texture, scale, channel,
        )
        if not engine._depth_ready(state.column_name, texture):
            copy_to_depth(device, texture, scale, channel=channel)
            engine.plan.depth.note(device, state.column_name, texture)
        _configure_valid_stencil(device, state.valid)
        state.prepared = True

    def _prepare_all(self, states: dict[int, _ShardState]) -> int:
        """Fan the search prep out to every shard; returns the combined
        valid-record count (degraded shards count on the CPU)."""
        self.pool.map(
            lambda shard: self._shard_call(
                shard,
                lambda s: self._guarded(
                    states[s.index], lambda: None
                ),
                lambda s: self._cpu_state(states[s.index]),
            )
        )
        return sum(state.valid_count for state in states.values())

    def _count_round(
        self, states: dict[int, _ShardState], tentative: int,
        denominator: float,
    ) -> int:
        """One distributed round: broadcast the candidate value, render
        one occlusion-counted ``GEQUAL`` quad per shard, sum counts."""

        def body(state: _ShardState) -> int:
            device = state.shard.engine.device
            query = device.begin_query()
            compare_pass(
                device, CompareFunc.GEQUAL,
                tentative / denominator, state.texture.count,
            )
            device.end_query()
            return int(query.result(synchronous=True))

        def cpu(shard: Shard) -> int:
            state = self._cpu_state(states[shard.index])
            return int(
                np.count_nonzero(state.cpu_values >= tentative)
            )

        counts = self.pool.map(
            lambda shard: self._shard_call(
                shard,
                lambda s: self._guarded(
                    states[s.index],
                    lambda: body(states[s.index]),
                ),
                cpu,
            )
        )
        # The search ops declare this per-round count sum as their
        # combiner; top_k's threshold search reuses the count fold (its
        # declared combiner is the final ordered concatenation).
        op = next(iter(states.values())).op
        return fold(op if op in _SEARCH_OPS else "count", counts)

    def _distributed_kth(
        self, states: dict[int, _ShardState], bits: int, k: int,
    ) -> int:
        """Figure-7 bit-wise binary search, distributed: every shard
        renders the same ``bits`` comparison passes as the single
        device would, over its slice; Lemma 1 is applied to the summed
        occlusion count each round."""
        denominator = float(1 << bits)
        x = 0
        for i in range(bits - 1, -1, -1):
            tentative = x + (1 << i)
            count = self._count_round(states, tentative, denominator)
            if count > k - 1:
                x = tentative
        return x

    def _run_search(self, schedule: Any) -> Any:
        import math

        op = schedule.op
        column_name = schedule.payload["column"]
        predicate = schedule.payload.get("predicate")
        k = schedule.payload.get("k")
        fractions = schedule.payload.get("fractions")
        engine = self.engine
        column = engine.relation.column(column_name)
        states = {
            shard.index: _ShardState(
                shard, op,
                column_name=column_name, predicate=predicate,
            )
            for shard in self.pool.shards
        }
        total_valid = self._prepare_all(states)
        if op in ("kth_largest", "kth_smallest"):
            engine._validate_k(k, total_valid)
        elif total_valid == 0:
            if op == "minimum":
                raise QueryError("MIN of an empty selection")
            if op == "median":
                raise QueryError("median of an empty selection")
            raise QueryError("quantiles of an empty selection")

        extreme = None
        if op == "minimum" or (op == "kth_smallest" and k == 1):
            extreme = "min"
        elif op == "kth_largest" and k == 1:
            extreme = "max"
        if extreme is not None:
            value = self._extreme(states, column.bits, extreme)
            label = "minimum" if extreme == "min" else "maximum"
            parts = self._harvest(
                list(states.values()), lambda s: s.valid_count
            )
            result = self._combined(op, column.from_stored(value), parts)
            result = dataclasses.replace(
                result, combiner=COMBINERS[label]
            )
            return result

        if op == "quantiles":
            ks = [
                min(
                    max(math.ceil((1.0 - q) * total_valid), 1),
                    total_valid,
                )
                for q in fractions
            ]
            values = [
                self._distributed_kth(states, column.bits, target)
                for target in ks
            ]
            value = [column.from_stored(v) for v in values]
        else:
            if op == "kth_largest":
                target = k
            elif op == "kth_smallest":
                target = total_valid - k + 1
            else:  # median
                target = (total_valid + 1) // 2
            value = column.from_stored(
                self._distributed_kth(states, column.bits, target)
            )
        parts = self._harvest(
            list(states.values()), lambda s: s.valid_count
        )
        return self._combined(op, value, parts)

    def _extreme(
        self, states: dict[int, _ShardState], bits: int, mode: str,
    ) -> int:
        """MIN/MAX merge trivially: each shard runs its *local* figure-7
        search (same pass count) and the host keeps the extremum.
        Shards whose selection is empty sit the search out."""

        def body(state: _ShardState) -> int | None:
            if state.valid_count == 0:
                return None
            engine = state.shard.engine
            local_k = 1 if mode == "max" else state.valid_count
            return aggregates.kth_largest(
                engine.device, state.texture, bits, local_k,
                state.scale, channel=state.channel,
                valid_stencil=state.valid, skip_copy=True,
            )

        def cpu(shard: Shard) -> int | None:
            state = self._cpu_state(states[shard.index])
            if state.valid_count == 0:
                return None
            if mode == "max":
                return int(state.cpu_values.max())
            return int(state.cpu_values.min())

        extrema = self.pool.map(
            lambda shard: self._shard_call(
                shard,
                lambda s: self._guarded(
                    states[s.index],
                    lambda: body(states[s.index]),
                ),
                cpu,
            )
        )
        found = [value for value in extrema if value is not None]
        return fold("maximum" if mode == "max" else "minimum", found)

    # -- top-k ---------------------------------------------------------------

    def _run_top_k(self, schedule: Any) -> Any:
        column_name = schedule.payload["column"]
        predicate = schedule.payload.get("predicate")
        k = schedule.payload["k"]
        engine = self.engine
        column = engine.relation.column(column_name)
        states = {
            shard.index: _ShardState(
                shard, "top_k",
                column_name=column_name, predicate=predicate,
                ensure_mask=True,
            )
            for shard in self.pool.shards
        }
        total_valid = self._prepare_all(states)
        engine._validate_k(k, total_valid)
        threshold = self._distributed_kth(states, column.bits, k)
        threshold_value = column.from_stored(threshold)

        def mark(state: _ShardState) -> np.ndarray:
            # The INCR pass consumes the prepared mask: if anything
            # after it faults, the retry must rebuild the mask first or
            # surviving records would be bumped twice.
            state.prepared = False
            device = state.shard.engine.device
            stencil = device.state.stencil
            stencil.enabled = True
            stencil.func = CompareFunc.EQUAL
            stencil.reference = state.valid
            stencil.sfail = StencilOp.KEEP
            stencil.zfail = StencilOp.KEEP
            stencil.zpass = StencilOp.INCR
            compare_pass(
                device, CompareFunc.GEQUAL,
                column.normalize(threshold_value),
                state.texture.count,
            )
            # Written by the compare_pass directly above — it cannot be
            # stale.  # repro-lint: disable=unchecked-stencil-read
            mask = device.read_stencil()
            ids = np.flatnonzero(mask == state.valid + 1)
            return ids[ids < state.shard.num_records]

        def cpu(shard: Shard) -> np.ndarray:
            state = self._cpu_state(states[shard.index])
            hits = state.cpu_mask & (state.cpu_stored >= threshold)
            return np.flatnonzero(hits)

        id_parts = self.pool.map(
            lambda shard: self._shard_call(
                shard,
                lambda s: self._guarded(
                    states[s.index], lambda: mark(states[s.index])
                ),
                cpu,
            )
        )
        ids = np.concatenate(
            [
                np.asarray(part, dtype=np.int64) + shard.start
                for part, shard in zip(id_parts, self.pool.shards)
            ]
        )
        parts = self._harvest(
            list(states.values()), lambda s: s.valid_count
        )
        return self._combined(
            "top_k",
            TopK(threshold=threshold_value, record_ids=ids),
            parts,
        )

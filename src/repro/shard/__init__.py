"""Sharded multi-device execution (scale-out past one FX-5900).

The paper assumes the whole relation fits one device's video memory.
This package removes that assumption: a relation is partitioned across
N simulated devices (:mod:`repro.shard.partition`), every engine
operation fans out as per-shard pass schedules run concurrently on a
thread pool, and the host merges the per-shard answers with typed
combiners — including the distributed bit-wise binary search for order
statistics (:mod:`repro.shard.sharded`).

Entry points: ``GpuEngine(..., shards=N)`` / ``Database(..., shards=N)``
or the ``REPRO_SHARDS`` environment variable; ``shards=1`` (the
default) is bit-identical to the single-device engine.  See
``docs/SHARDING.md``.
"""

from .partition import (
    SHARDS_ENV,
    THREADS_ENV,
    pool_threads,
    resolve_shards,
    shard_bounds,
    slice_relation,
)
from .results import (
    COMBINE_MS_PER_SHARD,
    ShardedOpResult,
    ShardedSelection,
)
from .sharded import (
    COMBINERS,
    SHARD_CID_STRIDE,
    Shard,
    ShardedDevice,
    ShardedExecutor,
)

__all__ = [
    "COMBINE_MS_PER_SHARD",
    "COMBINERS",
    "SHARD_CID_STRIDE",
    "SHARDS_ENV",
    "Shard",
    "ShardedDevice",
    "ShardedExecutor",
    "ShardedOpResult",
    "ShardedSelection",
    "THREADS_ENV",
    "pool_threads",
    "resolve_shards",
    "shard_bounds",
    "slice_relation",
]

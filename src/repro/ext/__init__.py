"""Extensions: the paper's future-work items built on the reproduced
primitives — multi-pass bitonic sorting (section 2.2 / conclusions) and
a selectivity-guided join with GPU histograms (sections 5.11 / 7).
"""

from .bitonic_sort import (
    SENTINEL,
    bitonic_sort_texture,
    num_sort_passes,
    sort_stage_program,
    sort_values,
)
from .join import (
    Histogram,
    JoinResult,
    band_join,
    gpu_histogram,
    hash_equi_join,
    nested_loop_join,
)

__all__ = [
    "Histogram",
    "JoinResult",
    "SENTINEL",
    "band_join",
    "bitonic_sort_texture",
    "gpu_histogram",
    "hash_equi_join",
    "nested_loop_join",
    "num_sort_passes",
    "sort_stage_program",
    "sort_values",
]

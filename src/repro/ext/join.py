"""Selectivity-guided join (the paper's future-work direction).

The paper cites selectivity estimation as the enabler for efficient
joins ([7, 10], section 5.11) and leaves joins as future work.  This
module builds the natural hybrid on top of the reproduced primitives:

1. **GPU histograms** — the value domain is split into buckets and each
   bucket's population is counted with one depth-bounds range pass plus
   an occlusion query (:func:`gpu_histogram`).  This is selectivity
   estimation at bucket granularity, entirely on the GPU.
2. **Bucket pruning** — only bucket pairs whose value ranges can satisfy
   the join condition survive; empty buckets cost nothing.
3. **GPU bucket extraction** — surviving buckets are materialized with
   range selections (stencil mask + readback).
4. **CPU refinement** — candidate pairs inside surviving bucket pairs
   are verified exactly.

Supports equi-joins (``R.a = S.b``) and band joins
(``|R.a - S.b| <= band``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.engine import GpuEngine
from ..core.predicates import Between
from ..errors import QueryError


@dataclasses.dataclass
class Histogram:
    """Bucketed value counts with shared, inclusive integer bounds."""

    edges: np.ndarray  # bucket i covers [edges[i], edges[i+1] - 1]
    counts: np.ndarray

    @property
    def num_buckets(self) -> int:
        return self.counts.size

    def bucket_bounds(self, index: int) -> tuple[int, int]:
        return int(self.edges[index]), int(self.edges[index + 1] - 1)


def _bucket_edges(lo: int, hi: int, buckets: int) -> np.ndarray:
    """Integer bucket edges covering [lo, hi] inclusively."""
    if buckets < 1:
        raise QueryError(f"need at least one bucket, got {buckets}")
    if hi < lo:
        raise QueryError(f"empty domain [{lo}, {hi}]")
    edges = np.linspace(lo, hi + 1, buckets + 1)
    edges = np.unique(np.floor(edges).astype(np.int64))
    if edges[-1] != hi + 1:
        edges[-1] = hi + 1
    return edges


def gpu_histogram(
    engine: GpuEngine, column_name: str, buckets: int = 32
) -> Histogram:
    """Histogram a column on the GPU: one depth-bounds range pass plus
    one occlusion readback per bucket (delegates to
    :meth:`~repro.core.engine.GpuEngine.histogram`)."""
    edges, counts = engine.histogram(column_name, buckets).value
    return Histogram(edges=edges, counts=counts)


@dataclasses.dataclass
class JoinResult:
    """Matched index pairs plus pruning diagnostics."""

    pairs: np.ndarray  # shape (m, 2): (left_id, right_id)
    bucket_pairs_total: int
    bucket_pairs_survived: int
    candidates_checked: int

    @property
    def num_matches(self) -> int:
        return self.pairs.shape[0]


def band_join(
    left: GpuEngine,
    right: GpuEngine,
    left_column: str,
    right_column: str,
    band: int = 0,
    buckets: int = 32,
) -> JoinResult:
    """``|left.a - right.b| <= band`` join (``band=0`` is an equi-join).

    GPU histograms prune bucket pairs; surviving buckets are extracted
    with GPU range selections and refined exactly on the CPU.
    """
    if band < 0:
        raise QueryError(f"band must be non-negative, got {band}")
    left_hist = gpu_histogram(left, left_column, buckets)
    right_hist = gpu_histogram(right, right_column, buckets)

    left_ids_by_bucket = _extract_buckets(left, left_column, left_hist)
    right_ids_by_bucket = _extract_buckets(right, right_column, right_hist)
    left_values = left.relation.column(left_column).values
    right_values = right.relation.column(right_column).values

    pairs: list[np.ndarray] = []
    total = left_hist.num_buckets * right_hist.num_buckets
    survived = 0
    candidates = 0
    for li in range(left_hist.num_buckets):
        if left_hist.counts[li] == 0:
            continue
        l_lo, l_hi = left_hist.bucket_bounds(li)
        for ri in range(right_hist.num_buckets):
            if right_hist.counts[ri] == 0:
                continue
            r_lo, r_hi = right_hist.bucket_bounds(ri)
            # Prune: closest approach of the two bucket ranges > band.
            if r_lo - l_hi > band or l_lo - r_hi > band:
                continue
            survived += 1
            l_ids = left_ids_by_bucket[li]
            r_ids = right_ids_by_bucket[ri]
            candidates += l_ids.size * r_ids.size
            matched = _refine(
                left_values[l_ids], right_values[r_ids], band
            )
            if matched[0].size:
                pairs.append(
                    np.column_stack(
                        (l_ids[matched[0]], r_ids[matched[1]])
                    )
                )
    if pairs:
        result = np.vstack(pairs)
        # Deterministic order for tests and reproducibility.
        order = np.lexsort((result[:, 1], result[:, 0]))
        result = result[order]
    else:
        result = np.empty((0, 2), dtype=np.int64)
    return JoinResult(
        pairs=result,
        bucket_pairs_total=total,
        bucket_pairs_survived=survived,
        candidates_checked=candidates,
    )


def _extract_buckets(
    engine: GpuEngine, column_name: str, histogram: Histogram
) -> list[np.ndarray]:
    """Record ids per non-empty bucket, via GPU range selections."""
    ids: list[np.ndarray] = []
    for index in range(histogram.num_buckets):
        if histogram.counts[index] == 0:
            ids.append(np.empty(0, dtype=np.int64))
            continue
        low, high = histogram.bucket_bounds(index)
        selection = engine.select(Between(column_name, low, high))
        ids.append(selection.record_ids())
    return ids


def _refine(
    left_values: np.ndarray, right_values: np.ndarray, band: int
):
    """Exact pairwise check within a bucket pair."""
    diff = np.abs(
        left_values[:, None].astype(np.int64)
        - right_values[None, :].astype(np.int64)
    )
    return np.nonzero(diff <= band)


def hash_equi_join(
    left_values: np.ndarray, right_values: np.ndarray
) -> np.ndarray:
    """CPU baseline equi-join: sort-and-probe (the in-memory hash-join
    stand-in).  Returns ``(m, 2)`` index pairs in the same deterministic
    (left, right) order as :func:`nested_loop_join` with ``band=0``."""
    left_values = np.asarray(left_values)
    right_values = np.asarray(right_values)
    if left_values.size == 0 or right_values.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    order = np.argsort(right_values, kind="stable")
    sorted_right = right_values[order]
    starts = np.searchsorted(sorted_right, left_values, side="left")
    stops = np.searchsorted(sorted_right, left_values, side="right")
    counts = stops - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty((0, 2), dtype=np.int64)
    left_ids = np.repeat(
        np.arange(left_values.size, dtype=np.int64), counts
    )
    # Gather the matching right positions per left record, in order.
    offsets = np.concatenate(([0], np.cumsum(counts)))
    right_ids = np.empty(total, dtype=np.int64)
    for index in np.flatnonzero(counts):
        right_ids[offsets[index]:offsets[index + 1]] = np.sort(
            order[starts[index]:stops[index]]
        )
    return np.column_stack((left_ids, right_ids))


def nested_loop_join(
    left_values: np.ndarray, right_values: np.ndarray, band: int = 0
) -> np.ndarray:
    """Reference join for correctness tests: all ``(i, j)`` with
    ``|left[i] - right[j]| <= band``, sorted."""
    matched = _refine(
        np.asarray(left_values), np.asarray(right_values), band
    )
    pairs = np.column_stack(matched).astype(np.int64)
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]

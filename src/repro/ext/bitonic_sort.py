"""Bitonic merge sort as multi-pass fragment rendering.

The paper lists sorting as future work and cites Purcell et al.'s
bitonic merge sort, "implemented as a fragment program [where] each
stage of the sorting algorithm is performed as one rendering pass" —
and notes it "can be quite slow for database operations on large
databases" (section 2.2).  This module implements exactly that design
so the claim can be measured.

Every stage ``(k, j)`` of the bitonic network runs one full-screen pass
of a fragment program that, per fragment:

1. reconstructs its linear element index ``i`` from the window position,
2. extracts the bits ``i & j`` and ``i & k`` with exact power-of-two
   float arithmetic (``floor``/``frac`` — no integer ops in 2004),
3. computes its partner's texture coordinates (``i XOR j``),
4. fetches both elements and keeps ``min`` or ``max`` per the network.

The output is written to the color buffer and copied back into a
texture (``glCopyTexSubImage2D``) for the next pass — the render-to-
texture idiom of the era.  ``log2(N) * (log2(N)+1) / 2`` passes total.
"""

from __future__ import annotations

import numpy as np

from ..errors import GpuError
from ..gpu.assembler import FragmentProgram, assemble
from ..gpu.pipeline import Device
from ..gpu.texture import MAX_TEXTURE_SIZE, Texture
from ..gpu.types import MAX_EXACT_INT

#: Padding value appended to reach a power-of-two element count.  Equal
#: to the largest representable value, so pads sort to the tail (ties
#: with real maxima are harmless: equal keys are interchangeable).
SENTINEL = float(MAX_EXACT_INT - 1)

_SORT_PROGRAM_SOURCE = """!!FP1.0
# Reconstruct the linear element index i = y * W + x from WPOS.
FLR R0, f[WPOS];
MAD R0.x, R0.y, p[2].x, R0.x;
# t = bit(i, j):  frac(floor(i / j) / 2) * 2
MUL R1.x, R0.x, p[1].x;
FLR R1.x, R1.x;
MUL R1.x, R1.x, {0.5};
FRC R1.x, R1.x;
ADD R1.x, R1.x, R1.x;
# u = bit(i, k)
MUL R2.x, R0.x, p[1].y;
FLR R2.x, R2.x;
MUL R2.x, R2.x, {0.5};
FRC R2.x, R2.x;
ADD R2.x, R2.x, R2.x;
# take_max = t XOR u = t + u - 2 t u
MUL R3.x, R1.x, R2.x;
ADD R4.x, R1.x, R2.x;
MAD R4.x, R3.x, {-2}, R4.x;
# partner = i + j * (1 - 2 t)
MAD R5.x, R1.x, {-2}, {1};
MUL R5.x, R5.x, p[1].z;
ADD R5.x, R5.x, R0.x;
# partner texcoords: py = floor(partner / W), px = partner - py * W
MUL R6.x, R5.x, p[2].y;
FLR R7.x, R6.x;
MAD R8.x, R7.x, -p[2].x, R5.x;
ADD R9.x, R8.x, {0.5};
MUL R9.x, R9.x, p[2].y;
ADD R9.y, R7.x, {0.5};
MUL R9.y, R9.y, p[2].w;
# fetch partner and self
TEX R10, R9, TEX0, 2D;
TEX R11, f[TEX0], TEX0, 2D;
# out = min + take_max * (max - min)
MIN R1, R10, R11;
MAX R2, R10, R11;
SUB R2, R2, R1;
MAD R1, R2, R4.x, R1;
MOV o[COLR], R1;
END
"""


def sort_stage_program() -> FragmentProgram:
    """The per-stage compare-and-swap program.

    Parameters at bind time: ``p[1] = (1/j, 1/k, j, 0)``,
    ``p[2] = (W, 1/W, H, 1/H)``.
    """
    return assemble(_SORT_PROGRAM_SOURCE, name="bitonic-stage")


def _pow2_shape(count: int) -> tuple[int, int]:
    """Smallest power-of-two (height, width) texture holding ``count``
    elements with both sides powers of two (required so every bitonic
    segment is texel-row aligned)."""
    if count < 1:
        raise GpuError("cannot sort zero elements")
    total = 1
    while total < count:
        total *= 2
    width = 1
    while width * width < total:
        width *= 2
    height = total // width
    if width > MAX_TEXTURE_SIZE or height > MAX_TEXTURE_SIZE:
        raise GpuError(
            f"{count} elements exceed the maximum sortable texture"
        )
    return height, width


def bitonic_sort_texture(device: Device, texture: Texture) -> Texture:
    """Sort a power-of-two texture ascending in row-major linear order.

    Ping-pongs between the input texture and the framebuffer: each stage
    renders into the color buffer and copies the result back.  Returns
    the same texture object, now sorted.
    """
    height, width = texture.shape
    if height & (height - 1) or width & (width - 1):
        raise GpuError(
            f"bitonic sort needs power-of-two texture sides, "
            f"got {width}x{height}"
        )
    if texture.shape != (device.framebuffer.height, device.framebuffer.width):
        raise GpuError("texture must match the framebuffer size")

    total = height * width
    program = sort_stage_program()
    state = device.state
    state.reset()
    state.color_mask = (True, True, True, True)
    device.set_program(program)
    device.set_program_parameter(
        2, (float(width), 1.0 / width, float(height), 1.0 / height)
    )

    k = 2
    while k <= total:
        j = k // 2
        while j >= 1:
            device.set_program_parameter(
                1, (1.0 / j, 1.0 / k, float(j), 0.0)
            )
            device.bind_texture(0, texture)
            # The sort network drives a standalone Device with pure
            # color passes; no stencil/depth state crosses op
            # boundaries, so the context scheduler has nothing to
            # checkpoint here.
            # repro-lint: disable=unscheduled-stencil-write
            device.render_quad(0.0)
            device.copy_color_to_texture(texture)
            j //= 2
        k *= 2
    device.set_program(None)
    return texture


def num_sort_passes(count: int) -> int:
    """Rendering passes a bitonic sort of ``count`` elements needs
    (stages only; each stage also performs one framebuffer copy)."""
    height, width = _pow2_shape(count)
    total = height * width
    log2n = total.bit_length() - 1
    return log2n * (log2n + 1) // 2


def sort_values(values: np.ndarray, device: Device | None = None):
    """Sort a 1-D array of non-negative integers (< 2**24) on the GPU.

    Returns ``(sorted_values, device)`` — the device is exposed so
    callers can inspect pipeline statistics or price the run.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise GpuError("cannot sort zero elements")
    height, width = _pow2_shape(values.size)
    padded = np.full(height * width, SENTINEL, dtype=np.float32)
    padded[: values.size] = values
    texture = Texture(padded.reshape(height, width), count=values.size)
    texture.assert_integer_exact()
    if device is None:
        device = Device(height, width)
    elif (device.framebuffer.height, device.framebuffer.width) != (
        height,
        width,
    ):
        raise GpuError(
            f"device framebuffer must be {width}x{height} for this sort"
        )
    bitonic_sort_texture(device, texture)
    sorted_all = texture.linear_view()[:, 0]
    return sorted_all[: values.size].copy(), device

"""Routine 4.2: ``Semilinear`` — semi-linear queries on the fragment
processors.

``dot(s, a) op b`` is evaluated entirely inside a fragment program: the
attributes of a record live in the channels of one RGBA texel, the
program computes the dot product with the coefficient vector in a single
``DP4``, and ``KIL`` discards fragments that fail the comparison.  No
depth copy is needed, which is why this is the paper's best case
(~one order of magnitude, figure 6) — it exercises both the parallel
pixel engines *and* their vector units.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import QueryError
from ..gpu.pipeline import Device
from ..gpu.programs import semilinear_program
from ..gpu.texture import Texture
from ..gpu.types import CompareFunc


@lru_cache(maxsize=16)
def _program(op: CompareFunc):
    return semilinear_program(op)


def semilinear_pass(
    device: Device,
    texture: Texture,
    coefficients,
    op: CompareFunc,
    constant: float,
) -> None:
    """Render one quad running ``SemilinearFP``.

    Fragments satisfying ``dot(coefficients, texel) op constant`` survive
    the program's ``KIL`` and reach the stencil stage; the caller
    configures what happens to them (stencil stamp, occlusion count).
    Coefficients beyond the texture's channel count must be zero.
    """
    coefficients = np.asarray(coefficients, dtype=np.float32).ravel()
    if coefficients.size > 4:
        raise QueryError(
            f"semi-linear queries take at most 4 coefficients, "
            f"got {coefficients.size}"
        )
    padded = np.zeros(4, dtype=np.float32)
    padded[: coefficients.size] = coefficients
    if texture.channels < 4:
        # Missing channels read as 0/1 per the texture fetch convention;
        # a non-zero alpha coefficient would silently pick up the 1.0
        # fill value, so reject it.
        if texture.channels < coefficients.size:
            raise QueryError(
                f"texture has {texture.channels} channels but "
                f"{coefficients.size} coefficients were given"
            )
        # Exact-zero sentinel on a user-supplied coefficient, not an
        # encoded value.  # repro-lint: disable=float-eq
        if padded[3] != 0.0 and texture.channels < 4:
            raise QueryError(
                "alpha-channel coefficient requires a 4-channel texture"
            )

    state = device.state
    state.depth.enabled = False
    state.depth_bounds.enabled = False
    state.alpha.enabled = False
    device.set_program(_program(op))
    device.set_program_parameter(0, padded)
    device.set_program_parameter(1, float(constant))
    device.render_textured_quad(texture)
    device.set_program(None)


def semilinear_count(
    device: Device,
    texture: Texture,
    coefficients,
    op: CompareFunc,
    constant: float,
) -> int:
    """Count the records satisfying the semi-linear query (occlusion
    query around a single ``SemilinearFP`` pass)."""
    state = device.state
    state.stencil.enabled = False
    state.color_mask = (False, False, False, False)
    query = device.begin_query()
    semilinear_pass(device, texture, coefficients, op, constant)
    device.end_query()
    return query.result(synchronous=True)

"""The paper's contribution: database operations as rendering passes.

Public entry points:

* :class:`Relation` / :class:`Column` — data model,
* :func:`col` and the predicate classes — query construction,
* :class:`GpuEngine` — GPU execution with simulated FX-5900 costing,
* :class:`CpuEngine` — the optimized CPU baseline behind the same API.
"""

from .aggregates import mipmap_sum
from .column import Column
from .cpu_engine import CpuEngine, CpuOpResult, CpuSelection, predicate_terms
from .engine import GpuEngine, GpuOpResult, Selection, TopK, split_copy_stats
from .estimate import ColumnHistogram, SelectivityEstimator
from .polynomial import Polynomial, polynomial_program
from .predicates import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Not,
    Or,
    Predicate,
    SemiLinear,
    SimplePredicate,
    attr_compare,
    col,
    is_simple,
    to_cnf,
    to_dnf,
)
from .relation import Relation

__all__ = [
    "And",
    "Between",
    "Column",
    "ColumnHistogram",
    "ColumnRef",
    "Comparison",
    "CpuEngine",
    "CpuOpResult",
    "CpuSelection",
    "GpuEngine",
    "GpuOpResult",
    "Not",
    "Or",
    "Polynomial",
    "Predicate",
    "Relation",
    "Selection",
    "SelectivityEstimator",
    "SemiLinear",
    "SimplePredicate",
    "TopK",
    "attr_compare",
    "col",
    "is_simple",
    "mipmap_sum",
    "polynomial_program",
    "predicate_terms",
    "split_copy_stats",
    "to_cnf",
    "to_dnf",
]

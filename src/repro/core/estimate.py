"""Histogram-based selectivity estimation.

Section 5.11 motivates fast selectivity *analysis* with join-ordering
work that relies on selectivity *estimation* ([7, 10]).  This module
closes the loop: per-column histograms — built on the GPU with one
depth-bounds range pass per bucket — feed a classical estimator
(uniform-within-bucket interpolation, attribute-independence for
boolean combinations) so a planner can predict a predicate's
selectivity without running it.

Estimates are approximations by design; the tests bound their error on
uniform and skewed data rather than asserting exactness.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError
from .polynomial import Polynomial
from .predicates import (
    And,
    Between,
    Comparison,
    Not,
    Or,
    Predicate,
    SemiLinear,
)
from ..gpu.types import CompareFunc

#: Fallback selectivity for predicates a 1-D histogram cannot model
#: (semi-linear / polynomial combinations of attributes) — the classic
#: "1/3" planner guess.
DEFAULT_COMPLEX_SELECTIVITY = 1.0 / 3.0


class ColumnHistogram:
    """Equi-width bucket counts for one integer column."""

    def __init__(self, edges: np.ndarray, counts: np.ndarray):
        edges = np.asarray(edges, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.float64)
        if edges.size != counts.size + 1:
            raise QueryError(
                f"{edges.size} edges do not delimit {counts.size} buckets"
            )
        self.edges = edges
        self.counts = counts
        self.total = float(counts.sum())

    def fraction_leq(self, value: float) -> float:
        """Estimated fraction of records with ``column <= value``."""
        if self.total == 0:
            return 0.0
        # Bucket i covers the half-open value range [edges[i], edges[i+1]).
        if value < self.edges[0]:
            return 0.0
        if value >= self.edges[-1] - 1:
            return 1.0
        index = int(
            np.searchsorted(self.edges, value, side="right") - 1
        )
        index = min(max(index, 0), self.counts.size - 1)
        below = float(self.counts[:index].sum())
        lo, hi = self.edges[index], self.edges[index + 1]
        # Uniform-within-bucket: include the <= value share of the
        # bucket's integer domain [lo, hi - 1].
        width = hi - lo
        inside = (value - lo + 1.0) / width if width > 0 else 1.0
        inside = min(max(inside, 0.0), 1.0)
        return (below + inside * float(self.counts[index])) / self.total

    def fraction_between(self, low: float, high: float) -> float:
        if high < low:
            return 0.0
        below_low = self.fraction_leq(low - 1.0)
        below_high = self.fraction_leq(high)
        return max(0.0, below_high - below_low)

    def fraction_equal(self, value: float) -> float:
        return self.fraction_between(value, value)


class SelectivityEstimator:
    """Estimates predicate selectivities from per-column histograms."""

    def __init__(self, histograms: dict[str, ColumnHistogram]):
        self.histograms = histograms

    @classmethod
    def build(cls, engine, buckets: int = 32) -> "SelectivityEstimator":
        """Build from an engine (GPU or CPU) exposing
        ``histogram(column, buckets)``; float columns are skipped and
        estimated with the complex-predicate default."""
        histograms = {}
        for name in engine.relation.column_names:
            column = engine.relation.column(name)
            if not column.is_integer:
                continue
            edges, counts = engine.histogram(name, buckets).value
            histograms[name] = ColumnHistogram(edges, counts)
        return cls(histograms)

    # -- estimation --------------------------------------------------------

    def estimate(self, predicate: Predicate) -> float:
        """Estimated selectivity in [0, 1]."""
        return min(max(self._walk(predicate), 0.0), 1.0)

    def estimate_count(self, predicate: Predicate, records: int) -> int:
        return int(round(self.estimate(predicate) * records))

    def _walk(self, predicate: Predicate) -> float:
        if isinstance(predicate, Comparison):
            return self._comparison(predicate)
        if isinstance(predicate, Between):
            histogram = self.histograms.get(predicate.column)
            if histogram is None:
                return DEFAULT_COMPLEX_SELECTIVITY
            return histogram.fraction_between(
                predicate.low, predicate.high
            )
        if isinstance(predicate, (SemiLinear, Polynomial)):
            return DEFAULT_COMPLEX_SELECTIVITY
        if isinstance(predicate, Not):
            return 1.0 - self._walk(predicate.child)
        if isinstance(predicate, And):
            # Attribute-independence assumption.
            product = 1.0
            for child in predicate.children:
                product *= self._walk(child)
            return product
        if isinstance(predicate, Or):
            # Inclusion-exclusion under independence:
            # P(A or B) = 1 - prod(1 - P(child)).
            miss = 1.0
            for child in predicate.children:
                miss *= 1.0 - self._walk(child)
            return 1.0 - miss
        raise QueryError(
            f"cannot estimate predicate of type "
            f"{type(predicate).__name__}"
        )

    def _comparison(self, predicate: Comparison) -> float:
        histogram = self.histograms.get(predicate.column)
        if histogram is None:
            return DEFAULT_COMPLEX_SELECTIVITY
        value = predicate.value
        op = predicate.op
        if op is CompareFunc.LEQUAL:
            return histogram.fraction_leq(value)
        if op is CompareFunc.LESS:
            return histogram.fraction_leq(value - 1.0)
        if op is CompareFunc.GEQUAL:
            return 1.0 - histogram.fraction_leq(value - 1.0)
        if op is CompareFunc.GREATER:
            return 1.0 - histogram.fraction_leq(value)
        if op is CompareFunc.EQUAL:
            return histogram.fraction_equal(value)
        # NOTEQUAL
        return 1.0 - histogram.fraction_equal(value)

"""Selection queries: dispatch predicates onto the right GPU path.

A selection leaves a stencil mask (``valid_stencil`` for selected
records, 0 otherwise) and returns the match count from occlusion queries
issued during the selection itself — selectivity analysis costs no extra
pass (paper section 5.11).

Dispatch:

* single :class:`Comparison` — routine 4.1 (copy + depth-test quad),
* single :class:`Between`    — routine 4.4 (depth-bounds test),
* single :class:`SemiLinear` — routine 4.2 (fragment program + KIL),
* single :class:`Polynomial` — the section 4.1.2 extension,
* anything else              — normalized to whichever of CNF
  (routine 4.3, EvalCNF) or DNF (the paper's "easily modified"
  variant, EvalDNF) needs fewer passes; consecutive predicates on the
  same attribute share one depth copy (the per-attribute copy the
  paper measures in figure 5).
"""

from __future__ import annotations

import dataclasses
from typing import Protocol

from ..errors import QueryError
from ..gpu.pipeline import Device
from ..gpu.texture import Texture
from .boolean import eval_cnf, eval_dnf
from .compare import compare_pass, copy_to_depth
from .polynomial import Polynomial, polynomial_pass
from .predicates import (
    Between,
    Comparison,
    Predicate,
    SemiLinear,
    to_cnf,
    to_dnf,
)
from .range_query import range_pass, range_select, setup_selection_stencil
from .relation import Relation
from .semilinear import semilinear_pass


class TextureProvider(Protocol):
    """What the selection executor needs from the engine.

    Providers may additionally expose
    ``ensure_depth(name) -> (texture, depth_scale, channel)`` — a
    cache-aware copy-to-depth that skips the pass when the provider can
    prove the attribute already sits in the depth buffer
    (:meth:`repro.core.engine.GpuEngine.ensure_depth`).  Selection falls
    back to an unconditional copy for minimal providers (e.g. the
    streaming engine).
    """

    def column_texture(self, name: str) -> tuple[Texture, float, int]:
        """Return ``(texture, depth_scale, channel)`` for a column."""

    def packed_texture(self, names: tuple[str, ...]) -> Texture:
        """Return a texture with the named columns in its channels."""


def _route_to_depth(
    device: Device, provider: TextureProvider, name: str
) -> Texture:
    """Put ``name``'s values into the depth buffer via the provider's
    ``ensure_depth`` when it has one, else an unconditional copy."""
    ensure = getattr(provider, "ensure_depth", None)
    if ensure is not None:
        texture, _scale, _channel = ensure(name)
        return texture
    texture, scale, channel = provider.column_texture(name)
    copy_to_depth(device, texture, scale, channel=channel)
    return texture


@dataclasses.dataclass
class SelectionOutcome:
    """Raw outcome of executing a selection on the device."""

    count: int
    valid_stencil: int


def execute_selection(
    device: Device,
    relation: Relation,
    provider: TextureProvider,
    predicate: Predicate,
) -> SelectionOutcome:
    """Run ``predicate`` and leave the stencil mask behind."""
    records = relation.num_records

    if isinstance(predicate, Comparison):
        count = _select_comparison(device, relation, provider, predicate)
        return SelectionOutcome(count=count, valid_stencil=1)

    if isinstance(predicate, Between):
        count = _select_between(device, relation, provider, predicate)
        return SelectionOutcome(count=count, valid_stencil=1)

    if isinstance(predicate, SemiLinear):
        count = _select_semilinear(device, relation, provider, predicate)
        return SelectionOutcome(count=count, valid_stencil=1)

    if isinstance(predicate, Polynomial):
        count = _select_polynomial(device, relation, provider, predicate)
        return SelectionOutcome(count=count, valid_stencil=1)

    form, clauses = _choose_normal_form(predicate)
    executor = _SimpleExecutor(relation, provider)
    evaluate = eval_cnf if form == "cnf" else eval_dnf
    valid, count = evaluate(device, clauses, executor, records)
    return SelectionOutcome(count=count, valid_stencil=valid)


def _choose_normal_form(predicate: Predicate):
    """Pick CNF or DNF by estimated pass count.

    CNF costs one pass per simple predicate plus one cleanup per
    clause; DNF costs two passes per simple predicate plus three fixed
    passes per clause (arm + accept) and two normalization passes.  A
    form whose conversion blows past the clause limit is disqualified.
    """
    candidates = []
    try:
        cnf = to_cnf(predicate)
        cnf_cost = sum(len(c) for c in cnf) + len(cnf)
        candidates.append((cnf_cost, "cnf", cnf))
    except QueryError:
        pass
    try:
        dnf = to_dnf(predicate)
        dnf_cost = sum(2 * len(c) + 3 for c in dnf) + 2
        candidates.append((dnf_cost, "dnf", dnf))
    except QueryError:
        pass
    if not candidates:
        raise QueryError(
            "predicate explodes in both CNF and DNF; simplify the query"
        )
    candidates.sort(key=lambda entry: entry[0])
    _cost, form, clauses = candidates[0]
    return form, clauses


def _select_comparison(
    device: Device,
    relation: Relation,
    provider: TextureProvider,
    predicate: Comparison,
) -> int:
    column = relation.column(predicate.column)
    depth = column.normalize(column.clamp_to_domain(predicate.value))
    setup_selection_stencil(device)
    texture = _route_to_depth(device, provider, predicate.column)
    query = device.begin_query()
    compare_pass(device, predicate.op, depth, texture.count)
    device.end_query()
    return query.result(synchronous=True)


def _select_between(
    device: Device,
    relation: Relation,
    provider: TextureProvider,
    predicate: Between,
) -> int:
    column = relation.column(predicate.column)
    low = column.normalize(column.clamp_to_domain(predicate.low))
    high = column.normalize(column.clamp_to_domain(predicate.high))
    if getattr(provider, "ensure_depth", None) is None:
        texture, scale, channel = provider.column_texture(
            predicate.column
        )
        return range_select(
            device, texture, low, high, scale, channel=channel
        )
    setup_selection_stencil(device)
    texture = _route_to_depth(device, provider, predicate.column)
    query = device.begin_query()
    range_pass(device, low, high, texture.count)
    device.end_query()
    return query.result(synchronous=True)


def _select_semilinear(
    device: Device,
    relation: Relation,
    provider: TextureProvider,
    predicate: SemiLinear,
) -> int:
    texture = provider.packed_texture(predicate.columns)
    setup_selection_stencil(device)
    device.state.color_mask = (False, False, False, False)
    query = device.begin_query()
    semilinear_pass(
        device,
        texture,
        predicate.coefficients,
        predicate.op,
        predicate.constant,
    )
    device.end_query()
    return query.result(synchronous=True)


def _select_polynomial(
    device: Device,
    relation: Relation,
    provider: TextureProvider,
    predicate: Polynomial,
) -> int:
    texture = provider.packed_texture(predicate.columns)
    setup_selection_stencil(device)
    device.state.color_mask = (False, False, False, False)
    query = device.begin_query()
    polynomial_pass(device, texture, predicate)
    device.end_query()
    return query.result(synchronous=True)


class _SimpleExecutor:
    """``execute_simple`` callback for :func:`eval_cnf`.

    Tracks which column currently occupies the depth buffer so that
    consecutive predicates on the same attribute skip the copy pass.
    """

    def __init__(self, relation: Relation, provider: TextureProvider):
        self.relation = relation
        self.provider = provider
        self._depth_holds: str | None = None

    def __call__(
        self, device: Device, predicate: Predicate, query: bool
    ) -> int | None:
        if isinstance(predicate, Comparison):
            return self._comparison(device, predicate, query)
        if isinstance(predicate, Between):
            return self._between(device, predicate, query)
        if isinstance(predicate, SemiLinear):
            return self._semilinear(device, predicate, query)
        if isinstance(predicate, Polynomial):
            return self._polynomial(device, predicate, query)
        raise QueryError(
            f"CNF clause holds a non-simple predicate: {predicate!r}"
        )

    def _ensure_in_depth(self, device: Device, name: str):
        ensure = getattr(self.provider, "ensure_depth", None)
        if ensure is not None:
            # The provider's plan cache subsumes (and outlives) the
            # per-operation sharing below.
            texture, _scale, _channel = ensure(name)
            return texture
        texture, scale, channel = self.provider.column_texture(name)
        if self._depth_holds != name:
            copy_to_depth(device, texture, scale, channel=channel)
            self._depth_holds = name
        return texture

    def _comparison(
        self, device: Device, predicate: Comparison, query: bool
    ) -> int | None:
        column = self.relation.column(predicate.column)
        texture = self._ensure_in_depth(device, predicate.column)
        depth = column.normalize(column.clamp_to_domain(predicate.value))
        return self._counted(
            device,
            query,
            lambda: compare_pass(device, predicate.op, depth, texture.count),
        )

    def _between(
        self, device: Device, predicate: Between, query: bool
    ) -> int | None:
        column = self.relation.column(predicate.column)
        texture = self._ensure_in_depth(device, predicate.column)
        low = column.normalize(column.clamp_to_domain(predicate.low))
        high = column.normalize(column.clamp_to_domain(predicate.high))
        return self._counted(
            device,
            query,
            lambda: range_pass(device, low, high, texture.count),
        )

    def _semilinear(
        self, device: Device, predicate: SemiLinear, query: bool
    ) -> int | None:
        texture = self.provider.packed_texture(predicate.columns)
        return self._counted(
            device,
            query,
            lambda: semilinear_pass(
                device,
                texture,
                predicate.coefficients,
                predicate.op,
                predicate.constant,
            ),
        )

    def _polynomial(
        self, device: Device, predicate: Polynomial, query: bool
    ) -> int | None:
        texture = self.provider.packed_texture(predicate.columns)
        return self._counted(
            device,
            query,
            lambda: polynomial_pass(device, texture, predicate),
        )

    @staticmethod
    def _counted(device: Device, query: bool, render) -> int | None:
        if not query:
            render()
            return None
        occlusion = device.begin_query()
        render()
        device.end_query()
        return occlusion.result(synchronous=True)

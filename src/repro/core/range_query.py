"""Routine 4.4: ``Range`` — single-pass range queries via the
depth-bounds test.

A range predicate ``low <= x <= high`` could be evaluated as a two-clause
CNF, but ``GL_EXT_depth_bounds_test`` tests the *stored* depth value
against an interval in one pass, so "the computational time ... is
comparable to the time required in evaluating a single predicate"
(section 4.2).  The depth-bounds path is the paper's headline 40x
compute-only win (figure 4); the EvalCNF fallback is kept for the
ablation benchmark.
"""

from __future__ import annotations

from ..errors import QueryError
from ..gpu.pipeline import Device
from ..gpu.texture import Texture
from ..gpu.types import CompareFunc, StencilOp
from .compare import copy_to_depth


def setup_selection_stencil(device: Device, reference: int = 1) -> None:
    """``SetupStencil``: clear the stencil to 0 and configure it so every
    fragment that reaches the stencil stage and passes all later tests
    stamps ``reference`` into the buffer."""
    device.clear_stencil(0)
    stencil = device.state.stencil
    stencil.enabled = True
    stencil.func = CompareFunc.ALWAYS
    stencil.reference = reference
    stencil.sfail = StencilOp.KEEP
    stencil.zfail = StencilOp.KEEP
    stencil.zpass = StencilOp.REPLACE


def range_pass(
    device: Device,
    low_depth: float,
    high_depth: float,
    count: int,
) -> None:
    """Lines 3-6 of routine 4.4: enable the depth-bounds test over
    ``[low, high]`` and render one quad.  Fragments whose *stored* depth
    (the attribute value) falls inside the bounds survive; the rest are
    discarded before any buffer update."""
    if low_depth > high_depth:
        raise QueryError(
            f"range bounds inverted: [{low_depth}, {high_depth}]"
        )
    state = device.state
    state.depth.enabled = False
    state.depth_bounds.enabled = True
    state.depth_bounds.zmin = low_depth
    state.depth_bounds.zmax = high_depth
    device.render_quad(low_depth, count=count)
    state.depth_bounds.enabled = False


def range_select(
    device: Device,
    texture: Texture,
    low_depth: float,
    high_depth: float,
    scale: float,
    channel: int = 0,
) -> int:
    """Full routine 4.4 with an occlusion count.

    Returns the number of records inside the range; the stencil buffer
    holds 1 for selected records and 0 otherwise.
    """
    setup_selection_stencil(device)
    copy_to_depth(device, texture, scale, channel=channel)
    query = device.begin_query()
    range_pass(device, low_depth, high_depth, texture.count)
    device.end_query()
    return query.result(synchronous=True)

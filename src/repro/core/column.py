"""Typed attribute columns.

A :class:`Column` is one attribute of a relation plus the metadata the
GPU algorithms need:

* its **bit width** — the paper's ``b_max`` (e.g. 19 bits for the
  TCP/IP ``data_count`` attribute, section 5.9), which bounds the pass
  counts of ``KthLargest`` and ``Accumulator``;
* its **depth normalization** — the affine map into [0, 1] used when the
  attribute is copied into the depth buffer.  For integer columns the
  map is ``v / 2**bits``, which is *exact* under 24-bit depth
  quantization; for floating-point columns it is a monotonic min/max
  map, exact to one part in 2**24 of the range (precisely the precision
  a real 24-bit depth buffer offers — paper section 6.1).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import DataError
from ..gpu.types import DEPTH_BITS, MAX_EXACT_INT


class Column:
    """A named attribute vector.  Use :meth:`integer` or :meth:`floating`
    to construct one."""

    def __init__(
        self,
        name: str,
        values: np.ndarray,
        is_integer: bool,
        bits: int,
        lo: float,
        hi: float,
        fraction_bits: int = 0,
        bias: int = 0,
    ):
        self.name = name
        self.values = values
        self.is_integer = is_integer
        self.bits = bits
        self.lo = lo
        self.hi = hi
        #: For fixed-point columns: the number of fractional bits.  The
        #: stored representation is ``value * 2**fraction_bits`` (an
        #: integer), which is what the bit-sliced aggregates operate on.
        self.fraction_bits = fraction_bits
        #: Offset encoding for signed integer columns: the stored
        #: (GPU-side) representation is ``value + bias``, a non-negative
        #: integer.  The depth mapping stays a power-of-two scale, so
        #: comparisons and bit-sliced aggregation remain exact;
        #: ``from_stored`` / ``sum_from_stored`` un-bias results.
        self.bias = bias

    # -- constructors ---------------------------------------------------------

    @classmethod
    def integer(
        cls, name: str, values, bits: int | None = None
    ) -> "Column":
        """A signed or unsigned integer attribute of at most 24 bits.

        Negative values are handled with offset (bias) encoding: the
        GPU-side stored representation is ``value - min(values)``, so
        the depth normalization keeps its exact power-of-two scale and
        every bit-sliced aggregate works unchanged; results are
        un-biased on the way out (``from_stored``).

        ``bits`` defaults to the smallest width that holds the *stored*
        data; it may be widened explicitly (e.g. to fix pass counts
        across datasets) but never narrowed below the data.
        """
        array = np.asarray(values)
        if array.ndim != 1:
            raise DataError(f"column {name!r}: values must be 1-D")
        if array.size and np.any(array != np.floor(array)):
            raise DataError(
                f"column {name!r}: integer columns need integer values"
            )
        bottom = int(array.min()) if array.size else 0
        bias = -bottom if bottom < 0 else 0
        top = (int(array.max()) if array.size else 0) + bias
        if top >= MAX_EXACT_INT:
            raise DataError(
                f"column {name!r}: the value span must be < "
                f"2**{DEPTH_BITS} for exact float32/depth representation"
            )
        needed = max(1, top.bit_length())
        if bits is None:
            bits = needed
        if not needed <= bits <= DEPTH_BITS:
            raise DataError(
                f"column {name!r}: bits={bits} outside "
                f"[{needed}, {DEPTH_BITS}]"
            )
        return cls(
            name,
            array.astype(np.float32),
            is_integer=True,
            bits=bits,
            lo=float(-bias),
            hi=float((1 << bits) - bias),
            bias=bias,
        )

    @classmethod
    def fixed_point(
        cls,
        name: str,
        values,
        fraction_bits: int,
        bits: int | None = None,
    ) -> "Column":
        """A non-negative fixed-point attribute with ``fraction_bits``
        fractional bits (the extension the paper's section 4.3.3
        mentions for ``Accumulator``).

        Values are quantized to multiples of ``2**-fraction_bits``; the
        stored integer ``value * 2**fraction_bits`` must fit in 24 bits.
        All depth normalizations stay powers of two, so comparisons and
        bit-sliced aggregation remain exact on the quantized values.
        """
        if not 1 <= fraction_bits <= DEPTH_BITS - 1:
            raise DataError(
                f"column {name!r}: fraction_bits={fraction_bits} "
                f"outside [1, {DEPTH_BITS - 1}]"
            )
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise DataError(f"column {name!r}: values must be 1-D")
        if array.size and np.any(array < 0):
            raise DataError(
                f"column {name!r}: fixed-point columns need "
                "non-negative values"
            )
        stored = np.round(array * float(1 << fraction_bits))
        top = int(stored.max()) if stored.size else 0
        if top >= MAX_EXACT_INT:
            raise DataError(
                f"column {name!r}: values * 2**{fraction_bits} must be "
                f"< 2**{DEPTH_BITS}"
            )
        needed = max(1, top.bit_length())
        if bits is None:
            bits = max(needed, fraction_bits + 1)
        if not needed <= bits <= DEPTH_BITS:
            raise DataError(
                f"column {name!r}: bits={bits} outside "
                f"[{needed}, {DEPTH_BITS}]"
            )
        quantized = (stored / float(1 << fraction_bits)).astype(
            np.float32
        )
        return cls(
            name,
            quantized,
            is_integer=False,
            bits=bits,
            lo=0.0,
            hi=float(1 << bits) / float(1 << fraction_bits),
            fraction_bits=fraction_bits,
        )

    @classmethod
    def floating(
        cls,
        name: str,
        values,
        lo: float | None = None,
        hi: float | None = None,
    ) -> "Column":
        """A float attribute with a known (or inferred) value range used
        for depth normalization."""
        array = np.asarray(values, dtype=np.float32)
        if array.ndim != 1:
            raise DataError(f"column {name!r}: values must be 1-D")
        if not np.all(np.isfinite(array)):
            raise DataError(f"column {name!r}: values must be finite")
        if lo is None:
            lo = float(array.min()) if array.size else 0.0
        if hi is None:
            hi = float(array.max()) if array.size else 1.0
        if hi <= lo:
            hi = lo + 1.0
        if array.size and (
            float(array.min()) < lo or float(array.max()) > hi
        ):
            raise DataError(
                f"column {name!r}: values outside the declared range "
                f"[{lo}, {hi}]"
            )
        return cls(
            name,
            array,
            is_integer=False,
            bits=DEPTH_BITS,
            lo=lo,
            hi=hi,
        )

    # -- geometry ---------------------------------------------------------------

    def __len__(self) -> int:
        return self.values.size

    @property
    def num_records(self) -> int:
        return self.values.size

    @property
    def is_fixed_point(self) -> bool:
        return self.fraction_bits > 0

    @property
    def supports_bit_slicing(self) -> bool:
        """True when KthLargest/Accumulator apply: integer or
        fixed-point columns (exact power-of-two stored domain)."""
        return self.is_integer or self.is_fixed_point

    def stored_values(self) -> np.ndarray:
        """The non-negative integer representation the bit-sliced
        aggregates (and the depth copy) see: ``value + bias`` for
        integer columns, ``value * 2**fraction_bits`` for fixed-point
        columns."""
        if self.is_integer:
            if self.bias == 0:
                return self.values
            return self.values + np.float32(self.bias)
        if self.is_fixed_point:
            return np.round(
                self.values.astype(np.float64)
                * float(1 << self.fraction_bits)
            ).astype(np.float32)
        raise DataError(
            f"column {self.name!r} has no integer representation"
        )

    def from_stored(self, stored):
        """Map a stored-domain integer result back to value units."""
        if self.is_integer:
            if self.bias == 0:
                return stored
            return stored - self.bias
        if self.is_fixed_point:
            return stored / float(1 << self.fraction_bits)
        raise DataError(
            f"column {self.name!r} has no integer representation"
        )

    def sum_from_stored(self, total, count: int):
        """Map a stored-domain SUM over ``count`` records back to value
        units.

        Unlike the per-value map, the bias does not distribute over a
        sum: ``Σ(v + bias) = Σv + count * bias``, so the whole
        accumulated bias is subtracted at once.
        """
        if self.is_integer:
            return total - count * self.bias
        if self.is_fixed_point:
            return total / float(1 << self.fraction_bits)
        raise DataError(
            f"column {self.name!r} has no integer representation"
        )

    # -- depth normalization ------------------------------------------------------

    @property
    def depth_scale(self) -> float:
        """Multiplier applied by the copy-to-depth fragment program."""
        return 1.0 / (self.hi - self.lo)

    @property
    def depth_offset(self) -> float:
        return self.lo

    def normalize(self, value) -> np.ndarray | float:
        """Map attribute value(s) into the [0, 1] depth range."""
        result = (np.asarray(value, dtype=np.float64) - self.lo) / (
            self.hi - self.lo
        )
        clipped = np.clip(result, 0.0, 1.0)
        return float(clipped) if np.ndim(value) == 0 else clipped

    def denormalize(self, depth) -> np.ndarray | float:
        result = np.asarray(depth, dtype=np.float64) * (
            self.hi - self.lo
        ) + self.lo
        return float(result) if np.ndim(depth) == 0 else result

    def normalized_values(self) -> np.ndarray:
        """Pre-normalized values, used when offset != 0 requires host-side
        preparation (float columns with a non-zero lower bound)."""
        return ((self.values.astype(np.float64) - self.lo)
                * self.depth_scale).astype(np.float32)

    def clamp_to_domain(self, value: float) -> float:
        """Clamp a query constant to the representable domain so that
        out-of-domain constants degrade to always-true/false comparisons
        instead of wrapping."""
        return float(min(max(value, self.lo), self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "int" if self.is_integer else "float"
        return (
            f"Column({self.name!r}, {kind}, n={self.num_records}, "
            f"bits={self.bits})"
        )


def bits_for_max(max_value: int) -> int:
    """Smallest bit width holding ``max_value`` (at least 1)."""
    if max_value < 0:
        raise DataError("max_value must be non-negative")
    return max(1, int(max_value).bit_length())


def bits_for_sum_passes(bits: int) -> int:
    """Number of Accumulator passes for a column of ``bits`` bits
    (routine 4.6 iterates i = 0 .. b_max)."""
    if not 1 <= bits <= DEPTH_BITS:
        raise DataError(f"bits={bits} outside [1, {DEPTH_BITS}]")
    return bits


def log2_ceil(n: int) -> int:
    if n <= 0:
        raise DataError("log2_ceil needs a positive argument")
    return math.ceil(math.log2(n))

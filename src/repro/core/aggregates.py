"""Section 4.3: aggregations — COUNT, MIN, MAX, k-th largest, SUM, AVG.

All of these reduce to *counting with occlusion queries*:

* ``COUNT`` is one occlusion-counted selection pass.
* ``KthLargest`` (routine 4.5) binary-searches the value bit by bit:
  pass ``i`` counts the records ``>= x + 2**i`` and Lemma 1 decides the
  bit.  ``b_max`` passes, no data rearrangement, constant in ``k``.
* ``Accumulator`` (routine 4.6) sums by bit-slicing:
  ``sum = Σ_i 2**i · #{records with bit i set}``, where the per-bit count
  comes from the ``TestBit`` fragment program + alpha test + occlusion
  query.  Exact for any integer data — unlike float mipmap reduction
  (:func:`mipmap_sum`), which is kept as the paper's inexact strawman.

Each routine accepts an optional ``valid_stencil`` so it aggregates only
records selected by an earlier query: the stencil test rejects
non-selected fragments and, with all stencil ops ``KEEP``, the selection
mask survives unchanged (paper sections 4.3.3 and 5.9 test 3).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import QueryError
from ..gpu.pipeline import Device
from ..gpu.programs import test_bit_kil_program, test_bit_program
from ..gpu.texture import Texture
from ..gpu.types import CompareFunc, StencilOp
from .compare import compare_pass, copy_to_depth


def _configure_valid_stencil(device: Device, valid_stencil: int | None):
    """Restrict all subsequent passes to records whose stencil equals
    ``valid_stencil``, without modifying the mask."""
    stencil = device.state.stencil
    if valid_stencil is None:
        stencil.enabled = False
        return
    stencil.enabled = True
    stencil.func = CompareFunc.EQUAL
    stencil.reference = valid_stencil
    stencil.sfail = StencilOp.KEEP
    stencil.zfail = StencilOp.KEEP
    stencil.zpass = StencilOp.KEEP


def count_valid(
    device: Device, count: int, valid_stencil: int | None = None
) -> int:
    """COUNT: one occlusion-counted full-screen pass over the selection
    (section 4.3.1)."""
    device.state.color_mask = (False, False, False, False)
    _configure_valid_stencil(device, valid_stencil)
    device.state.depth.enabled = False
    device.state.depth_bounds.enabled = False
    device.state.alpha.enabled = False
    query = device.begin_query()
    device.render_quad(0.0, count=count)
    device.end_query()
    return query.result(synchronous=True)


def kth_largest(
    device: Device,
    texture: Texture,
    bits: int,
    k: int,
    scale: float,
    channel: int = 0,
    valid_stencil: int | None = None,
    skip_copy: bool = False,
) -> int:
    """Routine 4.5: the k-th largest value of a ``bits``-bit integer
    attribute, via ``bits`` counting passes (MSB first).

    Returns the integer value.  ``k`` counts from 1 (the maximum).
    The attribute is copied to the depth buffer once; each pass renders
    one comparison quad at the tentative value and retrieves its
    occlusion count synchronously (the next bit depends on it).
    ``skip_copy=True`` asserts the attribute already sits in the depth
    buffer (the engine's plan cache proved it) and elides the copy.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    device.state.color_mask = (False, False, False, False)
    if not skip_copy:
        copy_to_depth(device, texture, scale, channel=channel)
    _configure_valid_stencil(device, valid_stencil)

    denominator = float(1 << bits)
    x = 0
    for i in range(bits - 1, -1, -1):
        tentative = x + (1 << i)
        query = device.begin_query()
        # attribute >= tentative  <=>  tentative <= attribute
        compare_pass(
            device, CompareFunc.GEQUAL, tentative / denominator,
            texture.count,
        )
        device.end_query()
        # Lemma 1: count > k-1  =>  tentative <= v_k, keep the bit.
        if query.result(synchronous=True) > k - 1:
            x = tentative
    return x


def kth_largest_multi(
    device: Device,
    texture: Texture,
    bits: int,
    ks: list[int],
    scale: float,
    channel: int = 0,
    valid_stencil: int | None = None,
    skip_copy: bool = False,
) -> list[int]:
    """Routine 4.5 for several k at once, sharing one depth copy.

    The attribute is copied to the depth buffer once; each k then costs
    only its ``bits`` comparison passes.  This is how quantile ladders
    (p50/p90/p99...) amortize the paper's dominant copy cost.
    """
    if not ks:
        raise QueryError("kth_largest_multi() needs at least one k")
    if any(k < 1 for k in ks):
        raise QueryError(f"every k must be >= 1, got {ks}")
    device.state.color_mask = (False, False, False, False)
    if not skip_copy:
        copy_to_depth(device, texture, scale, channel=channel)
    _configure_valid_stencil(device, valid_stencil)

    denominator = float(1 << bits)
    results = []
    for k in ks:
        x = 0
        for i in range(bits - 1, -1, -1):
            tentative = x + (1 << i)
            query = device.begin_query()
            compare_pass(
                device,
                CompareFunc.GEQUAL,
                tentative / denominator,
                texture.count,
            )
            device.end_query()
            if query.result(synchronous=True) > k - 1:
                x = tentative
        results.append(x)
    return results


def kth_smallest(
    device: Device,
    texture: Texture,
    bits: int,
    k: int,
    scale: float,
    valid_count: int,
    channel: int = 0,
    valid_stencil: int | None = None,
    skip_copy: bool = False,
) -> int:
    """The k-th smallest value: the (n - k + 1)-th largest, which is
    duplicate-safe (the paper inverts the comparison; complementing k is
    the equivalent order-statistics identity)."""
    if not 1 <= k <= valid_count:
        raise QueryError(
            f"k={k} outside [1, {valid_count}] valid records"
        )
    return kth_largest(
        device,
        texture,
        bits,
        valid_count - k + 1,
        scale,
        channel=channel,
        valid_stencil=valid_stencil,
        skip_copy=skip_copy,
    )


def maximum(
    device, texture, bits, scale, channel=0, valid_stencil=None,
    skip_copy=False,
):
    """MAX = the 1st largest (section 4.3.2)."""
    return kth_largest(
        device, texture, bits, 1, scale,
        channel=channel, valid_stencil=valid_stencil, skip_copy=skip_copy,
    )


def minimum(
    device, texture, bits, scale, valid_count, channel=0, valid_stencil=None,
    skip_copy=False,
):
    """MIN = the ``valid_count``-th largest."""
    return kth_largest(
        device, texture, bits, valid_count, scale,
        channel=channel, valid_stencil=valid_stencil, skip_copy=skip_copy,
    )


def median(
    device, texture, bits, scale, valid_count, channel=0, valid_stencil=None,
    skip_copy=False,
):
    """The ceil(n/2)-th largest value (the paper's median convention for
    figures 8 and 9)."""
    if valid_count < 1:
        raise QueryError("median of an empty selection")
    k = (valid_count + 1) // 2
    return kth_largest(
        device, texture, bits, k, scale,
        channel=channel, valid_stencil=valid_stencil, skip_copy=skip_copy,
    )


@lru_cache(maxsize=8)
def _test_bit(channel: int):
    return test_bit_program(channel)


@lru_cache(maxsize=8)
def _test_bit_kil(channel: int):
    return test_bit_kil_program(channel)


def accumulate(
    device: Device,
    texture: Texture,
    bits: int,
    channel: int = 0,
    valid_stencil: int | None = None,
    use_alpha_test: bool = True,
) -> int:
    """Routine 4.6: ``Accumulator`` — exact integer SUM by bit slicing.

    One pass per bit: the ``TestBit`` program moves
    ``frac(value / 2**(i+1))`` into alpha and the alpha test
    (``>= 0.5``) lets exactly the bit-set fragments through to the
    occlusion counter.  Queries are issued back to back and only the
    final result synchronizes, matching the paper's observation that
    occlusion queries pipeline (section 5.3).

    ``use_alpha_test=False`` switches to the ``KIL``-based rejection the
    paper found slower (ablation).
    """
    texture.assert_integer_exact()
    state = device.state
    state.color_mask = (False, False, False, False)
    state.depth.enabled = False
    state.depth_bounds.enabled = False
    _configure_valid_stencil(device, valid_stencil)
    if use_alpha_test:
        device.set_program(_test_bit(channel))
        state.alpha.enabled = True
        state.alpha.func = CompareFunc.GEQUAL
        state.alpha.reference = 0.5
    else:
        device.set_program(_test_bit_kil(channel))
        state.alpha.enabled = False

    queries = []
    for i in range(bits):
        device.set_program_parameter(0, 1.0 / float(1 << (i + 1)))
        query = device.begin_query()
        device.render_textured_quad(texture)
        device.end_query()
        queries.append(query)

    device.set_program(None)
    state.alpha.enabled = False

    total = 0
    for i, query in enumerate(queries):
        # Only the last retrieval waits on the pipeline; earlier results
        # are already available by then (asynchronous queries).
        synchronous = i == len(queries) - 1
        total += query.result(synchronous=synchronous) << i
    return total


def average(
    device: Device,
    texture: Texture,
    bits: int,
    channel: int = 0,
    valid_stencil: int | None = None,
) -> float:
    """AVG = SUM / COUNT (section 4.3.3)."""
    selected = count_valid(
        device, texture.count, valid_stencil=valid_stencil
    )
    if selected == 0:
        raise QueryError("AVG of an empty selection")
    total = accumulate(
        device, texture, bits, channel=channel, valid_stencil=valid_stencil
    )
    return total / selected


def mipmap_sum(texture: Texture, channel: int = 0) -> tuple[float, int]:
    """The float-mipmap SUM the paper argues against (section 4.3.3):
    repeated 2x2 float32 averaging down to one texel, then
    ``average * texel_count``.

    Returns ``(approximate_sum, levels)``.  Unlike :func:`accumulate`
    this loses precision once partial averages exceed float32's 24-bit
    significand; tests and the ablation benchmark quantify the error.
    """
    if not 0 <= channel < texture.channels:
        raise QueryError(
            f"channel {channel} out of range for "
            f"{texture.channels}-channel texture"
        )
    level = texture.data[:, :, channel].astype(np.float32)
    levels = 0
    while level.size > 1:
        height, width = level.shape
        padded_h = height + (height % 2)
        padded_w = width + (width % 2)
        if (padded_h, padded_w) != (height, width):
            padded = np.zeros((padded_h, padded_w), dtype=np.float32)
            padded[:height, :width] = level
            level = padded
        # One mipmap level: average each 2x2 block in float32.
        blocks = level.reshape(
            padded_h // 2, 2, padded_w // 2, 2
        )
        level = blocks.mean(axis=(1, 3), dtype=np.float32).astype(np.float32)
        levels += 1
    # Each 2x2 average divides the running sum by 4 (zero padding adds
    # nothing), so the root holds total_sum / 4**levels.
    return float(level[0, 0]) * float(4 ** levels), levels

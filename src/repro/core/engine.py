"""The public GPU query engine.

:class:`GpuEngine` wraps one relation: it sizes a simulated device so the
relation's records line up texel-per-pixel, caches the attribute
textures, and exposes the paper's operations as methods.  Every method
returns a result object carrying the answer *and* the measured pipeline
statistics split into the paper's two phases:

* ``copy``    — the copy-to-depth passes (the overhead the paper reports
  separately in figures 3-5),
* ``compute`` — everything else (comparison quads, fragment programs,
  occlusion stalls).

Costing those windows with a :class:`~repro.gpu.cost.GpuCostModel` gives
the simulated GeForce-FX timings the benchmark harness reports.
"""

from __future__ import annotations

import dataclasses
import functools
import os

import numpy as np

from ..analysis.race import ensure_installed, sanitizer_requested
from ..errors import (
    GpuError,
    QueryError,
    QueryTimeoutError,
    StaleSelectionError,
)
from ..faults import current_executor
from ..gpu.context import ContextScheduler, VirtualContext
from ..gpu.cost import GpuCostModel, GpuTime
from ..gpu.counters import PipelineStats
from ..gpu.memory import VideoMemory
from ..gpu.pipeline import Device
from ..gpu.texture import Texture, texture_shape_for
from ..plan.cache import PlanCache
from ..plan.passes import predicate_key
from ..trace import current_tracer
from .compare import copy_to_depth
from .polynomial import Polynomial
from .predicates import (
    And,
    Between,
    Comparison,
    Not,
    Or,
    Predicate,
    SemiLinear,
)
from .relation import Relation
from .select import execute_selection

_COPY_PREFIX = "copy-to-depth"


def _resilient(method):
    """Route an engine operation through the attached
    :class:`~repro.faults.ResilientExecutor` (transient GPU faults are
    retried; each attempt re-runs the operation from scratch).

    Operations delegating to other operations (``count`` -> ``select``)
    retry only at the outermost call, so the attempt budget is the
    policy's, not its square.
    """
    name = method.__name__

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        if self._in_resilient_op:
            return method(self, *args, **kwargs)
        # The unified aggregate() entry point dispatches on its first
        # argument; retries should be attributed to the actual
        # operation ("count", "median", ...), not the dispatcher.
        if name == "aggregate":
            op_name = kwargs.get("op", args[0] if args else name)
        elif name == "execute_schedule":
            op_name = args[0].op if args else name
        else:
            op_name = name
        executor = self.executor
        if executor is None:
            try:
                return method(self, *args, **kwargs)
            except GpuError:
                # A fault may have interrupted a pass mid-write; none of
                # the cached depth/stencil outcomes can be trusted.
                self.plan.invalidate()
                raise
            except QueryTimeoutError:
                # A deadline expiring mid-operation abandons the op at
                # a pass boundary: discard any in-flight occlusion
                # query and the now-unfinished cached outcomes.
                self.device.abort_query()
                self.plan.invalidate()
                raise

        def attempt():
            # A fault can interrupt a pass mid-query; every attempt
            # starts from clean device state or the re-render would
            # trip over the dangling occlusion query.
            self.device.abort_query()
            try:
                return method(self, *args, **kwargs)
            except GpuError:
                # Retries must start cold: a half-written buffer whose
                # generation did not advance would otherwise satisfy a
                # cache lookup on the next attempt.
                self.plan.invalidate()
                raise
            except QueryTimeoutError:
                # Not a device fault: the executor will not retry it,
                # but the abandoned operation still needs cleanup.
                self.device.abort_query()
                self.plan.invalidate()
                raise

        self._in_resilient_op = True
        try:
            return executor.run(attempt, op=op_name, tracer=self.tracer)
        finally:
            self._in_resilient_op = False

    return wrapper


def split_copy_stats(
    window: PipelineStats,
) -> tuple[PipelineStats, PipelineStats]:
    """Split a stats window into (copy passes, everything else)."""
    copy = PipelineStats()
    compute = PipelineStats()
    for p in window.passes:
        if p.program is not None and p.program.startswith(_COPY_PREFIX):
            copy.record_pass(p)
        else:
            compute.record_pass(p)
    compute.bytes_uploaded = window.bytes_uploaded
    compute.bytes_read_back = window.bytes_read_back
    compute.occlusion_results = window.occlusion_results
    compute.clears = window.clears
    return copy, compute


@dataclasses.dataclass
class TopK:
    """Result payload of a top-k query."""

    #: The k-th largest value (the inclusion threshold).
    threshold: int
    #: Ids of records with value >= threshold (may exceed k on ties).
    record_ids: np.ndarray

    def __len__(self) -> int:
        return int(self.record_ids.size)


@dataclasses.dataclass
class GpuOpResult:
    """Answer plus measured statistics for one engine operation."""

    value: object
    copy: PipelineStats
    compute: PipelineStats
    #: Cost model of the engine that produced this result; prices the
    #: unified accessors below (``None`` falls back to model defaults).
    model: GpuCostModel | None = None

    def copy_time(self, model: GpuCostModel) -> GpuTime:
        return model.time(self.copy)

    def compute_time(self, model: GpuCostModel) -> GpuTime:
        return model.time(self.compute)

    def total_time(self, model: GpuCostModel) -> GpuTime:
        return self.copy_time(model) + self.compute_time(model)

    # -- unified result accessors (shared with CpuOpResult/QueryResult) --

    @property
    def time_ms(self) -> float:
        """Simulated GeForce-FX milliseconds, copy + compute phases."""
        return self.total_time(self.model or GpuCostModel()).total_ms

    @property
    def pass_count(self) -> int:
        """Rendering passes issued across both phases."""
        return self.copy.num_passes + self.compute.num_passes

    @property
    def stats(self) -> PipelineStats:
        """Merged pipeline statistics (copy + compute phases)."""
        return PipelineStats.merged((self.copy, self.compute))


@dataclasses.dataclass
class Selection(GpuOpResult):
    """Result of a selection query.  ``value`` is the match count.

    The selection mask lives in the stencil buffer of the virtual
    context that ran the ``select``, and a context holds exactly
    **one** such mask: the next stencil-writing query *in the same
    context* (another ``select``, ``top_k``, ...) overwrites it.  The
    selection snapshots the context's stencil generation at creation;
    reading ``record_ids()`` / ``records()`` after the mask was
    overwritten raises :class:`~repro.errors.StaleSelectionError`
    instead of silently returning the *other* query's records.  Call
    :meth:`materialize` while the selection is live to keep the ids
    across later queries.

    Queries under *other* contexts never stale a selection: reads
    re-activate the owning context (restoring its checkpointed
    buffers), which is what makes concurrent sessions safe by
    construction.
    """

    valid_stencil: int = 1
    total_records: int = 0
    engine: "GpuEngine | None" = None
    #: Stencil generation at creation time (staleness check), in the
    #: owning context's generation band.
    generation: int = 0
    #: The virtual context whose stencil buffer holds the mask; reads
    #: re-activate it through the engine's scheduler, so another
    #: context's queries can never invalidate this selection.
    context: "VirtualContext | None" = None
    _cached_ids: np.ndarray | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def count(self) -> int:
        return int(self.value)

    @property
    def selectivity(self) -> float:
        if self.total_records == 0:
            return 0.0
        return self.count / self.total_records

    @property
    def is_stale(self) -> bool:
        """True when a later query *in the same context* overwrote this
        selection's stencil mask (unmaterialized reads would raise).
        Other contexts' queries cannot stale it — their writes land in
        a different generation band behind a checkpoint."""
        if self.engine is None or self._cached_ids is not None:
            return False
        return self._current_generation() != self.generation

    def _current_generation(self) -> int:
        """The stencil generation this selection's mask lives under."""
        if self.context is not None:
            return self.engine.contexts.stencil_generation_of(
                self.context
            )
        return self.engine.device.stencil_generation

    def materialize(self) -> "Selection":
        """Read the mask back now and cache the record ids, so they
        survive later stencil-writing queries.  Returns ``self``."""
        if self._cached_ids is None:
            self._cached_ids = self._read_ids()
        return self

    def record_ids(self) -> np.ndarray:
        """The selected record indices, from the cached snapshot when
        :meth:`materialize` was called, otherwise via a stencil readback
        (a costed readback — GPUs return results via the bus)."""
        if self._cached_ids is not None:
            return self._cached_ids
        return self._read_ids()

    def _read_ids(self) -> np.ndarray:
        if self.engine is None:
            raise QueryError("selection is detached from its engine")
        device = self.engine.device
        current = self._current_generation()
        if current != self.generation:
            raise StaleSelectionError(
                "selection is stale: a later query overwrote the "
                f"stencil mask (generation {current} "
                f"!= {self.generation}); call materialize() while the "
                "selection is live, or re-run select()"
            )
        if self.context is not None:
            # Swap this selection's context back onto the device (a
            # no-op when it is already active) so the readback sees
            # *its* mask, not whichever context ran last.
            self.engine.activate_context(self.context)
        executor = self.engine.executor
        if executor is None:
            # Staleness already checked above through
            # _current_generation(), which consults the owning
            # context's stencil generation.
            # repro-lint: disable=unchecked-stencil-read
            stencil = device.read_stencil()
        else:
            # The mask is intact in the stencil buffer; a corrupted
            # transfer is recovered by simply reading again.
            stencil = executor.run(
                device.read_stencil,
                op="read_ids",
                tracer=device.tracer,
            )
        ids = np.flatnonzero(stencil == self.valid_stencil)
        return ids[ids < self.total_records]

    def records(self) -> Relation:
        """Materialize the selected rows as a new relation."""
        if self.engine is None:
            raise QueryError("selection is detached from its engine")
        return self.engine.relation.take(self.record_ids())


class GpuEngine:
    """GPU-backed query engine over one relation."""

    def __init__(
        self,
        relation: Relation,
        cost_model: GpuCostModel | None = None,
        video_memory: VideoMemory | None = None,
        layout: str = "planar",
        tracer=None,
        executor=None,
        fusion: bool = True,
        debug: bool = False,
        jit: bool | None = None,
        shards: int | None = None,
        context_band: int = 0,
        sanitize: bool | None = None,
    ):
        """``video_memory`` overrides the default 256 MB pool — pass a
        smaller :class:`~repro.gpu.memory.VideoMemory` to exercise the
        out-of-core texture swapping of paper section 6.1.

        ``executor`` attaches a
        :class:`~repro.faults.ResilientExecutor`: every engine operation
        retries transient GPU faults (device lost, occlusion timeout,
        readback corruption, memory pressure) with capped exponential
        backoff before letting the error escape.  Defaults to the
        process-wide executor installed by
        :func:`repro.faults.use_executor` (usually ``None`` — faults
        propagate immediately).

        ``tracer`` attaches a :class:`~repro.trace.Tracer`: every engine
        operation becomes a span and every rendering pass a
        :class:`~repro.trace.PassEvent`.  Defaults to the process-wide
        tracer installed by :func:`repro.trace.use_tracer` (usually
        ``None`` — the zero-overhead fast path).

        ``layout`` picks the paper's section-3.3 record representation:

        * ``"planar"`` — one single-channel texture per attribute
          ("the same texel location in multiple textures");
        * ``"packed"`` — groups of four attributes share the RGBA
          channels of one texture ("multiple channels of a single
          texel"); the copy-to-depth program then selects the
          attribute's channel with a swizzle.

        Results are identical; the layouts trade texture count against
        channel addressing.

        ``fusion`` enables the pass-fusion plan caches
        (:mod:`repro.plan`): redundant copy-to-depth passes are elided
        when the depth buffer provably still holds the attribute, and
        repeated WHERE clauses reuse the live stencil mask.
        ``fusion=False`` is the honest unfused baseline: every
        operation re-renders all its passes and harvests every
        occlusion count synchronously.

        ``debug`` runs the static schedule verifier
        (:mod:`repro.analysis`) over every operation's compiled
        :class:`~repro.plan.PassSchedule` before any pass executes,
        raising :class:`~repro.errors.PlanVerificationError` on
        hazards (stale depth, stencil-protocol violations, occlusion
        query imbalance, under-keyed caches).

        ``jit`` selects the fragment-program backend: ``True`` compiles
        each program once into a fused numpy kernel
        (:mod:`repro.gpu.jit`), ``False`` interprets instruction by
        instruction.  Both produce bit-identical results and identical
        modeled cost; JIT only changes host wall-clock.  ``None``
        (default) follows the ``REPRO_JIT`` environment variable —
        on unless ``REPRO_JIT=0``.

        ``shards`` partitions the relation across N simulated devices
        (:mod:`repro.shard`): every operation fans out as per-shard
        schedules on a thread pool and merges on the host.  ``None``
        (default) follows the ``REPRO_SHARDS`` environment variable;
        the resolved default of 1 is bit-identical to a single device.

        ``context_band`` offsets this engine's virtual-context cids
        (generation banding); the shard layer uses it to give every
        shard device a disjoint band.  Leave at 0 everywhere else.

        ``sanitize`` turns on the concurrency sanitizer
        (:mod:`repro.analysis.race`): every buffer/cache/stats access
        becomes a recorded event and unordered cross-thread access
        pairs surface as H109 ``device-race`` diagnostics via
        :func:`repro.analysis.race.race_report`.  ``None`` (default)
        follows the ``REPRO_SAN`` environment variable; off costs one
        predicate check per hook.
        """
        if layout not in ("planar", "packed"):
            raise QueryError(
                f"layout must be 'planar' or 'packed', got {layout!r}"
            )
        self.relation = relation
        self.layout = layout
        if sanitize or (sanitize is None and sanitizer_requested()):
            ensure_installed(force=bool(sanitize))
        self.shape = texture_shape_for(relation.num_records)
        if jit is None:
            jit = os.environ.get("REPRO_JIT", "1") != "0"
        self.device = Device(
            *self.shape,
            video_memory=video_memory,
            tracer=tracer if tracer is not None else current_tracer(),
            jit=jit,
        )
        self.cost_model = cost_model or GpuCostModel()
        self.executor = (
            executor if executor is not None else current_executor()
        )
        self._in_resilient_op = False
        self._op_span = None
        self.fusion = fusion
        self.debug = debug
        #: Schedules statically verified so far (debug mode only);
        #: fault-retried operations verify again on every attempt.
        self.debug_verifications = 0
        # Virtual stencil/depth contexts multiplexed onto the device;
        # every context gets its own plan cache (a depth/stencil
        # outcome cached under one context must not satisfy a lookup
        # under another).  The cache resolves the tracer lazily:
        # engines swap tracers mid-life (Database re-targets per
        # query).
        self.contexts = ContextScheduler(
            self.device,
            plan_factory=lambda: PlanCache(
                tracer_source=lambda: self.device.tracer
            ),
            base_cid=context_band,
        )
        # Sharded execution (repro.shard): resolved here so shards=None
        # follows REPRO_SHARDS; 1 keeps the single-device fast path
        # (self.sharded stays None and nothing changes).
        from ..shard.partition import resolve_shards

        num_shards = resolve_shards(shards)
        self.sharded = None
        if num_shards > 1:
            from ..shard.sharded import ShardedDevice

            self.sharded = ShardedDevice(self, num_shards)
        self._column_textures: dict[str, Texture] = {}
        self._stored_textures: dict[str, Texture] = {}
        self._packed_textures: dict[tuple[str, ...], Texture] = {}
        self._layout_groups: dict[str, tuple[tuple[str, ...], int]] = {}
        if layout == "packed":
            names = relation.column_names
            for start in range(0, len(names), 4):
                group = tuple(names[start:start + 4])
                for channel, name in enumerate(group):
                    self._layout_groups[name] = (group, channel)

    @property
    def tracer(self):
        """The attached tracer (``None`` = tracing disabled)."""
        return self.device.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.device.tracer = value

    # -- virtual contexts --------------------------------------------------------

    @property
    def plan(self) -> PlanCache:
        """The *active* context's plan cache (each virtual context
        caches its own depth/stencil outcomes)."""
        return self.contexts.active.plan

    def create_context(self, name: str | None = None) -> VirtualContext:
        """Allocate a private stencil/depth context on this engine's
        device (see :class:`~repro.gpu.context.ContextScheduler`).  On
        a sharded engine the context is mirrored onto every shard."""
        context = self.contexts.create(name)
        if self.sharded is not None:
            self.sharded.create_context(context)
        return context

    def activate_context(self, context: VirtualContext) -> VirtualContext:
        """Make ``context`` the device's live stencil/depth state
        (checkpointing the previously active context).  Subsequent
        operations and selections run under it.  On a sharded engine
        the per-shard mirror contexts activate in lockstep."""
        activated = self.contexts.activate(context)
        if self.sharded is not None:
            self.sharded.activate_context(context)
        return activated

    def release_context(self, context: VirtualContext) -> None:
        """Drop ``context``'s checkpoint; it can no longer be
        activated.  Sharded engines release the mirrors too."""
        if self.sharded is not None:
            self.sharded.release_context(context)
        self.contexts.release(context)

    # -- TextureProvider protocol ------------------------------------------------

    def column_texture(self, name: str) -> tuple[Texture, float, int]:
        """Texture + depth scale + channel for one column.

        Planar layout: a single-channel texture per attribute.  Packed
        layout: the attribute's RGBA group texture plus its channel
        index (the copy program swizzles the channel out).  Integer and
        fixed-point columns upload raw values (the copy program's
        power-of-two scale keeps the depth mapping exact); float
        columns upload pre-normalized values with scale 1.
        """
        column = self.relation.column(name)
        if self.layout == "packed" and not column.is_fixed_point:
            return self._packed_column_texture(name, column)
        texture = self._column_textures.get(name)
        if texture is None:
            if column.is_integer:
                # Stored (bias-encoded) values; the copy program's
                # power-of-two scale keeps the depth mapping exact.
                values = column.stored_values()
            elif column.is_fixed_point:
                # Raw quantized values; depth_scale folds in the
                # fraction-bit shift.
                values = column.values
            else:
                values = column.normalized_values()
            texture = Texture.from_values(values, shape=self.shape)
            self._warm(texture)
            self._column_textures[name] = texture
        if column.is_integer or column.is_fixed_point:
            scale = column.depth_scale
        else:
            scale = 1.0
        return texture, scale, 0

    def _packed_column_texture(self, name: str, column):
        """Packed layout: locate the attribute's RGBA group + channel.

        Float columns are packed pre-normalized (their per-column
        affine maps differ, so normalization cannot ride on the shared
        copy scale); integer columns are packed raw and rely on the
        power-of-two copy scale.  Mixed groups therefore pack the
        normalized representation for floats and raw for integers —
        each attribute still gets its own (scale, channel) pair.
        """
        group, channel = self._layout_groups[name]
        texture = self._packed_textures.get(("layout",) + group)
        if texture is None:
            columns = []
            for member in group:
                member_column = self.relation.column(member)
                if member_column.is_integer:
                    columns.append(member_column.stored_values())
                else:
                    columns.append(member_column.normalized_values())
            while len(columns) < 4:
                columns.append(
                    np.zeros(self.relation.num_records, dtype=np.float32)
                )
            texture = Texture.from_columns(columns, shape=self.shape)
            self._warm(texture)
            self._packed_textures[("layout",) + group] = texture
        scale = column.depth_scale if column.is_integer else 1.0
        return texture, scale, channel

    def stored_texture(self, name: str) -> tuple[Texture, int]:
        """Integer-domain ``(texture, channel)`` for bit-sliced
        aggregation: raw values for integer columns (their regular
        texture, honoring the packed layout's channel), or
        ``value * 2**fraction_bits`` for fixed-point columns."""
        column = self.relation.column(name)
        if column.is_integer:
            texture, _scale, channel = self.column_texture(name)
            return texture, channel
        texture = self._stored_textures.get(name)
        if texture is None:
            texture = Texture.from_values(
                column.stored_values(), shape=self.shape
            )
            self._warm(texture)
            self._stored_textures[name] = texture
        return texture, 0

    def packed_texture(self, names: tuple[str, ...]) -> Texture:
        """Raw attribute values packed into the channels of one texture
        (the semi-linear layout, paper section 3.3)."""
        names = tuple(names)
        texture = self._packed_textures.get(names)
        if texture is None:
            columns = [self.relation.column(name).values for name in names]
            # Always pack a full RGBA texture: with fewer channels the
            # texture-fetch fill convention (LUMINANCE replication, alpha
            # = 1) would leak into the DP4 coefficients.
            while len(columns) < 4:
                columns.append(
                    np.zeros(self.relation.num_records, dtype=np.float32)
                )
            texture = Texture.from_columns(columns, shape=self.shape)
            self._warm(texture)
            self._packed_textures[names] = texture
        return texture

    def _warm(self, texture: Texture) -> None:
        """Upload a texture outside the measured window.

        The paper's measurements assume resident attribute textures
        (256 MB of video memory holds "more than 50 attributes",
        section 5.1); one-time AGP uploads are setup, not query cost.
        ``total_uploaded`` on the device's memory manager still records
        them for out-of-core analyses.
        """
        before = self.device.stats.bytes_uploaded
        self.device.bind_texture(0, texture)
        self.device.stats.bytes_uploaded = before

    # -- plan cache ----------------------------------------------------------------

    def ensure_depth(self, name: str) -> tuple[Texture, float, int]:
        """Route ``name``'s values into the depth buffer, skipping the
        copy pass when the plan cache proves they are already there
        (same texture contents, no depth write since the last copy).

        With ``fusion=False`` the copy is unconditional — the honest
        unfused baseline.  Returns ``(texture, depth_scale, channel)``
        exactly like :meth:`column_texture`.
        """
        texture, scale, channel = self.column_texture(name)
        if self._depth_ready(name, texture):
            return texture, scale, channel
        copy_to_depth(self.device, texture, scale, channel=channel)
        self.plan.depth.note(self.device, name, texture)
        return texture, scale, channel

    def _depth_ready(self, name: str, texture: Texture) -> bool:
        """True when the plan cache proves the depth buffer already
        holds ``name`` (the caller elides its copy-to-depth; otherwise
        it must ``plan.depth.note`` after copying)."""
        if not self.fusion:
            return False
        if self.plan.depth.lookup(self.device, name, texture):
            self.plan.depth_hit(name)
            return True
        self.plan.depth_miss(name)
        return False

    def _predicate_fingerprint(
        self, predicate: Predicate
    ) -> tuple[tuple[int, int], ...]:
        """(texture id, texture generation) for every texture the
        predicate reads — the content half of a stencil-cache key."""
        pairs: list[tuple[int, int]] = []

        def visit(p: Predicate) -> None:
            if isinstance(p, (Comparison, Between)):
                texture, _scale, _channel = self.column_texture(p.column)
                pairs.append((texture.id, texture.generation))
            elif isinstance(p, (SemiLinear, Polynomial)):
                texture = self.packed_texture(tuple(p.columns))
                pairs.append((texture.id, texture.generation))
            elif isinstance(p, Not):
                visit(p.child)
            elif isinstance(p, (And, Or)):
                for child in p.children:
                    visit(child)
            else:
                raise QueryError(
                    f"cannot fingerprint {type(p).__name__} predicate"
                )

        visit(predicate)
        unique: list[tuple[int, int]] = []
        for pair in pairs:
            if pair not in unique:
                unique.append(pair)
        return tuple(unique)

    def invalidate_plan_cache(self) -> None:
        """Drop every cached depth/stencil outcome.

        Benchmarks call this between iterations to measure cold-cache
        behavior; it is also invoked automatically whenever a resilient
        attempt fails with a GPU fault.
        """
        self.plan.invalidate()

    def _trace_schedule(self, schedule) -> None:
        """Attach a compiled schedule's fusion facts to the op span."""
        tracer = self.device.tracer
        if tracer is not None:
            tracer.record_event(
                "schedule",
                category="plan",
                op=schedule.op,
                passes=schedule.render_passes,
                copies=schedule.copy_passes,
                stalls=schedule.stalls,
                fused_copies=schedule.fused_copies,
                fused_stalls=schedule.fused_stalls,
            )

    def _verify_schedule(self, schedule) -> None:
        """Debug mode: statically verify a compiled schedule before any
        of its passes touch the device.  Raises
        :class:`~repro.errors.PlanVerificationError` on hazards; no-op
        unless the engine was built with ``debug=True``."""
        if not self.debug:
            return
        # Runtime import: repro.analysis imports repro.plan, which
        # reaches back into repro.core at import time.
        from ..analysis import assert_verified

        assert_verified(schedule)
        self.debug_verifications += 1

    # -- measurement helpers -------------------------------------------------------

    def _begin(self, op: str | None = None, **attrs) -> None:
        """Start a fresh stats window (and, when tracing, an op span)."""
        self.device.stats.reset()
        tracer = self.device.tracer
        if tracer is not None:
            if self._op_span is not None and self._op_span.end_s is None:
                # The previous op raised mid-span; close it so this
                # op's span does not nest under a dead one.
                tracer.end(self._op_span)
            self._op_span = tracer.begin(op or "op", **attrs)
        else:
            self._op_span = None

    def _validate_k(self, k: int, valid_count: int) -> None:
        """Order statistics need 1 <= k <= (record count after any
        predicate); one message format across engines and entry points."""
        if not 1 <= k <= valid_count:
            raise QueryError(
                f"k={k} outside [1, {valid_count}] valid records"
            )

    def _finish(self, value) -> GpuOpResult:
        copy, compute = split_copy_stats(self.device.stats.snapshot())
        self.device.stats.reset()
        result = GpuOpResult(
            value=value, copy=copy, compute=compute, model=self.cost_model
        )
        tracer = self.device.tracer
        if tracer is not None and self._op_span is not None:
            tracer.end(
                self._op_span,
                modeled_ms=result.total_time(self.cost_model).total_ms,
            )
            self._op_span = None
        return result

    # -- queries ----------------------------------------------------------------------

    @_resilient
    def execute_schedule(self, schedule, *, jit: bool | None = None):
        """Run one compiled :class:`~repro.plan.PassSchedule` end to
        end — the single execution entry point every operation funnels
        through.

        The named operations (``select``, ``aggregate``, ``histogram``,
        ...) all lower through :mod:`repro.plan.compiler` and call this
        method; SQL statements and the query service reach the device
        the same way.  That makes this the one choke point where the
        static verifier (debug mode), the tracer span, the resilient
        fault retry, and deadline cancellation all attach.

        ``jit`` overrides the device's fragment-program backend for
        this schedule only (``None`` keeps the engine default), which
        is how the differential tests pin the JIT against the
        interpreter on identical schedules.
        """
        # Runtime import: repro.plan.executor reaches back into
        # repro.core at import time.
        if self.sharded is not None:
            from ..shard.sharded import ShardedExecutor

            return ShardedExecutor(self).execute(schedule, jit=jit)
        from ..plan.executor import ScheduleExecutor

        return ScheduleExecutor(self).execute(schedule, jit=jit)

    @_resilient
    def select(self, predicate: Predicate) -> Selection:
        """Evaluate a WHERE clause; leaves the selection mask in the
        stencil buffer and returns count + statistics."""
        from ..plan import compiler

        schedule = compiler.lower_select(
            self.relation, predicate, fuse=self.fusion
        )
        return self.execute_schedule(schedule)

    def count(self, predicate: Predicate | None = None) -> GpuOpResult:
        """COUNT(*) [WHERE predicate]."""
        return self.aggregate("count", predicate=predicate)

    def selectivity(self, predicate: Predicate) -> float:
        return self.select(predicate).selectivity

    # -- aggregates -----------------------------------------------------------------------

    def _integer_column(self, name: str):
        column = self.relation.column(name)
        if not column.supports_bit_slicing:
            raise QueryError(
                f"bit-slicing aggregates need an integer or fixed-point "
                f"column; {name!r} is floating-point"
            )
        return column

    def _selection_stencil(
        self, predicate: Predicate | None
    ) -> tuple[int | None, int]:
        """Run the selection (if any); return (valid_stencil, valid_count).

        The selection's passes land in the current stats window, so the
        caller's result includes the selection cost — matching the
        paper's figure 9 protocol.  When the plan cache proves the
        predicate's mask is still live in the stencil buffer (same
        stencil generation, same source textures), the selection is
        skipped outright and its cached count reused.
        """
        if predicate is None:
            return None, self.relation.num_records
        key = fingerprint = None
        if self.fusion:
            key = predicate_key(predicate)
            fingerprint = self._predicate_fingerprint(predicate)
            cached = self.plan.stencil.lookup(
                self.device, key, fingerprint
            )
            if cached is not None:
                count, valid_stencil = cached
                self.plan.stencil_hit(predicate, count)
                return valid_stencil, count
            self.plan.stencil_miss(predicate)
        outcome = execute_selection(
            self.device, self.relation, self, predicate
        )
        if self.fusion:
            self.plan.stencil.note(
                self.device,
                key,
                fingerprint,
                outcome.count,
                outcome.valid_stencil,
            )
        return outcome.valid_stencil, outcome.count

    #: Ops :meth:`aggregate` accepts; the named methods are thin
    #: wrappers over :meth:`aggregate`.
    AGGREGATE_OPS = (
        "count",
        "sum",
        "average",
        "minimum",
        "maximum",
        "median",
        "kth_largest",
        "kth_smallest",
        "quantiles",
        "top_k",
    )

    @_resilient
    def aggregate(
        self,
        op: str,
        column_name: str | None = None,
        predicate: Predicate | None = None,
        *,
        k: int | None = None,
        fractions: list[float] | None = None,
    ) -> GpuOpResult:
        """Single entry point for every aggregate operation.

        ``op`` is one of :data:`AGGREGATE_OPS`.  ``k`` applies to
        ``kth_largest`` / ``kth_smallest`` / ``top_k``; ``fractions``
        to ``quantiles``.  ``maximum`` is canonicalized to
        ``kth_largest`` with ``k=1`` (section 4.3.2), matching the span
        name the trace always used.

        Validation (op names, column types, ``k`` ranges, fractions)
        happens here; the execution itself compiles to a
        :class:`~repro.plan.PassSchedule` and runs through
        :meth:`execute_schedule`, whose driver owns selection reuse
        through the stencil cache, copy-to-depth elision through the
        depth cache, and the stats window / trace span.
        """
        from ..plan import compiler

        if op == "maximum":
            op, k = "kth_largest", (1 if k is None else k)
        if op not in self.AGGREGATE_OPS:
            raise QueryError(
                f"unknown aggregate op {op!r}; expected one of "
                f"{', '.join(self.AGGREGATE_OPS)}"
            )

        if op == "count":
            if predicate is not None:
                # A counted WHERE is exactly a selection.
                return self.select(predicate)
            return self.execute_schedule(compiler.lower_aggregate(
                self.relation, "count", None, fuse=self.fusion
            ))

        if column_name is None:
            raise QueryError(f"aggregate {op!r} needs a column")
        self._integer_column(column_name)
        if op in ("kth_largest", "kth_smallest", "top_k"):
            if k is None:
                raise QueryError(f"aggregate {op!r} needs k")
            self._validate_k(k, self.relation.num_records)
        if op == "quantiles":
            if not fractions:
                raise QueryError(
                    "quantiles() needs at least one fraction"
                )
            if any(not 0.0 <= q <= 1.0 for q in fractions):
                raise QueryError(
                    f"fractions must lie in [0, 1], got {fractions}"
                )
        schedule = compiler.lower_aggregate(
            self.relation, op, column_name,
            predicate=predicate, fractions=fractions,
            fuse=self.fusion, k=k,
        )
        return self.execute_schedule(schedule)

    def kth_largest(
        self,
        column_name: str,
        k: int,
        predicate: Predicate | None = None,
    ) -> GpuOpResult:
        """Routine 4.5 over the whole column or a selection."""
        return self.aggregate(
            "kth_largest", column_name, predicate, k=k
        )

    def kth_smallest(
        self,
        column_name: str,
        k: int,
        predicate: Predicate | None = None,
    ) -> GpuOpResult:
        return self.aggregate(
            "kth_smallest", column_name, predicate, k=k
        )

    def maximum(self, column_name, predicate=None) -> GpuOpResult:
        return self.aggregate("kth_largest", column_name, predicate, k=1)

    def minimum(self, column_name, predicate=None) -> GpuOpResult:
        return self.aggregate("minimum", column_name, predicate)

    def median(self, column_name, predicate=None) -> GpuOpResult:
        """The ceil(n/2)-th largest value (figures 8 and 9)."""
        return self.aggregate("median", column_name, predicate)

    def sum(self, column_name, predicate=None) -> GpuOpResult:
        """Routine 4.6 (exact integer / fixed-point SUM)."""
        return self.aggregate("sum", column_name, predicate)

    def average(self, column_name, predicate=None) -> GpuOpResult:
        return self.aggregate("average", column_name, predicate)

    def top_k(
        self,
        column_name: str,
        k: int,
        predicate: Predicate | None = None,
    ) -> GpuOpResult:
        """Record ids of the k largest values (ties included).

        Runs ``KthLargest`` for the threshold, then one more comparison
        pass that bumps matching records' stencil values, and reads the
        mask back.  With duplicate values at the threshold the result
        may contain more than ``k`` ids — the standard top-k-with-ties
        semantics.  ``value`` is a ``TopK`` with ``threshold`` and
        ``record_ids``.
        """
        return self.aggregate("top_k", column_name, predicate, k=k)

    def quantiles(
        self,
        column_name: str,
        fractions: list[float],
        predicate: Predicate | None = None,
    ) -> GpuOpResult:
        """A quantile ladder (e.g. p50/p90/p99) from one depth copy.

        Each fraction ``q`` maps to the ``ceil((1 - q) * n)``-th largest
        value (``q = 0.5`` matches the engine's median convention).
        All quantiles share a single copy-to-depth pass; each costs its
        ``bits`` comparison passes.  ``value`` is the list of quantile
        values aligned with ``fractions``.
        """
        return self.aggregate(
            "quantiles", column_name, predicate, fractions=fractions
        )

    @_resilient
    def selectivities(
        self, predicates: list[Predicate]
    ) -> GpuOpResult:
        """Batched selectivity analysis: counts for many predicates in
        one sweep, sharing depth copies between consecutive predicates
        on the same attribute.

        This is the section 5.11 workload — a join optimizer probing
        many candidate predicates — where the per-attribute copy would
        otherwise dominate.  Returns ``value`` as a list of counts
        aligned with ``predicates``.

        Execution is schedule-driven: the plan compiler lowers the
        sweep (sharing one copy-to-depth per attribute run and — with
        fusion — harvesting all occlusion counts with a single batched
        stall) and :meth:`execute_schedule` drives it.
        """
        # Runtime import: repro.plan.compiler reaches back into
        # repro.core at import time.
        from ..plan import compiler

        if not predicates:
            raise QueryError(
                "selectivities() needs at least one predicate"
            )
        schedule = compiler.lower_selectivities(
            self.relation, predicates, fuse=self.fusion
        )
        return self.execute_schedule(schedule)

    @_resilient
    def histogram(
        self, column_name: str, buckets: int = 32
    ) -> GpuOpResult:
        """Bucketed value counts via one depth copy plus one counted
        depth-bounds range pass per bucket — GPU-side selectivity
        estimation (the primitive behind the paper's section 5.11 and
        the join extension).  ``value`` is ``(edges, counts)``.

        With fusion the buckets share the single copy and all counts
        are harvested with one batched stall; the stencil buffer is
        left untouched (an earlier selection's mask survives).
        ``fusion=False`` re-runs the full range selection per bucket.
        """
        from ..plan import compiler

        self._integer_column(column_name)
        if buckets < 1:
            raise QueryError(f"need at least one bucket, got {buckets}")
        schedule = compiler.lower_histogram(
            self.relation, column_name, buckets, fuse=self.fusion
        )
        return self.execute_schedule(schedule)

    # -- cost shortcuts ------------------------------------------------------------------

    def time_ms(self, result: GpuOpResult) -> float:
        """Total simulated GPU milliseconds for an operation."""
        return result.total_time(self.cost_model).total_ms

"""Routine 4.3: ``EvalCNF`` — boolean combinations in the stencil buffer.

A CNF ``A1 AND A2 AND ... AND Ak`` (each ``Ai`` a disjunction of simple
predicates) is evaluated clause by clause with three stencil values:

* ``0`` — permanently invalid,
* ``1`` / ``2`` — "valid so far", ping-ponged between odd and even
  clauses.

For an odd clause the valid value is 1: every satisfying disjunct
``INCR``s matching pixels to 2 (and, because the stencil test then fails
for them, at most once per record even if several disjuncts match); a
cleanup pass zeroes pixels still at 1.  Even clauses mirror this with
``DECR`` and valid value 2.  After the last clause, non-zero stencil
marks exactly the records satisfying the whole CNF.

The occlusion counts of the *last* clause's predicate passes sum to the
CNF's selectivity count — no extra pass needed (paper section 5.11).
"""

from __future__ import annotations

from typing import Callable

from ..gpu.pipeline import Device
from ..gpu.state import (
    CNF_STENCIL_VALID_ODD,
    cnf_valid_stencil,
)
from ..gpu.types import STENCIL_MAX, CompareFunc, StencilOp
from .predicates import Predicate

#: ``execute_simple(device, predicate, query)``: render the pass(es) that
#: make exactly the satisfying fragments reach the stencil zpass stage,
#: under the stencil configuration already installed by ``eval_cnf``.
#: When ``query`` is true, the effectful pass must run inside an
#: occlusion query whose count is returned.
SimpleExecutor = Callable[[Device, Predicate, bool], int | None]


def eval_cnf(
    device: Device,
    clauses: list[list[Predicate]],
    execute_simple: SimpleExecutor,
    count: int,
) -> tuple[int, int]:
    """Evaluate a CNF and return ``(valid_stencil_value, match_count)``.

    After the call the stencil buffer holds ``valid_stencil_value`` for
    records satisfying the CNF and 0 elsewhere.
    """
    device.state.color_mask = (False, False, False, False)
    device.clear_stencil(CNF_STENCIL_VALID_ODD)
    if not clauses:
        # Empty conjunction: everything matches; stencil already 1.
        return CNF_STENCIL_VALID_ODD, count

    matched = 0
    last = len(clauses)
    for clause_index, clause in enumerate(clauses, start=1):
        odd = bool(clause_index % 2)
        valid = cnf_valid_stencil(clause_index)
        grow = StencilOp.INCR if odd else StencilOp.DECR

        stencil = device.state.stencil
        stencil.enabled = True
        stencil.func = CompareFunc.EQUAL
        stencil.reference = valid
        stencil.sfail = StencilOp.KEEP
        stencil.zfail = StencilOp.KEEP
        stencil.zpass = grow

        is_last = clause_index == last
        for predicate in clause:
            result = execute_simple(device, predicate, is_last)
            if is_last:
                matched += int(result or 0)

        # Cleanup: records still at the stale valid value satisfied the
        # previous clauses but no disjunct of this one -> invalidate.
        stencil.func = CompareFunc.EQUAL
        stencil.reference = valid
        stencil.zpass = StencilOp.ZERO
        device.state.depth.enabled = False
        device.state.depth_bounds.enabled = False
        device.render_quad(0.0, count=count)

    # The survivors carry the value the last clause grew them to.
    final_valid = cnf_valid_stencil(last + 1)
    return final_valid, matched


#: Stencil bit planes used by the DNF evaluator.
_DNF_WORK_MASK = 0x3  # per-clause EvalCNF counter
_DNF_ACCEPT_BIT = 0x4  # sticky "some clause matched" flag
#: Final stencil value marking DNF-selected records.
DNF_VALID_STENCIL = _DNF_ACCEPT_BIT


def eval_dnf(
    device: Device,
    clauses: list[list[Predicate]],
    execute_simple: SimpleExecutor,
    count: int,
) -> tuple[int, int]:
    """Evaluate a DNF (OR of AND-clauses): the paper's "easily
    modified" variant of routine 4.3.

    Uses two stencil bit planes (via the glStencilMask write mask):
    bits 0-1 run the regular EvalCNF ping-pong for one AND-clause at a
    time, and bit 2 stickily accumulates acceptance across clauses.
    Returns ``(DNF_VALID_STENCIL, match_count)`` with the stencil
    normalized to {0, DNF_VALID_STENCIL}.
    """
    device.state.color_mask = (False, False, False, False)
    device.clear_stencil(0)
    stencil = device.state.stencil
    if not clauses:
        # Empty disjunction: nothing matches; stencil already 0.
        return DNF_VALID_STENCIL, 0

    matched = 0
    for conjunction in clauses:
        # Re-arm the working plane to 1 on every pixel (the accept bit
        # is outside the write mask and survives).
        stencil.enabled = True
        stencil.func = CompareFunc.ALWAYS
        stencil.mask = STENCIL_MAX
        stencil.write_mask = _DNF_WORK_MASK
        stencil.reference = 1
        stencil.sfail = StencilOp.KEEP
        stencil.zfail = StencilOp.KEEP
        stencil.zpass = StencilOp.REPLACE
        device.state.depth.enabled = False
        device.state.depth_bounds.enabled = False
        device.render_quad(0.0, count=count)

        # Run EvalCNF's clause loop inside the working plane: the
        # conjunction is a CNF whose clauses are singletons.
        for index, predicate in enumerate(conjunction, start=1):
            odd = bool(index % 2)
            valid = cnf_valid_stencil(index)
            stencil.func = CompareFunc.EQUAL
            stencil.mask = _DNF_WORK_MASK
            stencil.write_mask = _DNF_WORK_MASK
            stencil.reference = valid
            stencil.zpass = (
                StencilOp.INCR if odd else StencilOp.DECR
            )
            execute_simple(device, predicate, False)
            # Invalidate records still at the stale working value.
            stencil.zpass = StencilOp.ZERO
            device.state.depth.enabled = False
            device.state.depth_bounds.enabled = False
            device.render_quad(0.0, count=count)

        # Accept newly-satisfying records: working plane holds the
        # final valid value AND the accept bit is still clear (the
        # comparison spans all three bits, so already-accepted records
        # are not re-counted).  INVERT through the accept-bit write
        # mask flips exactly that bit from 0 to 1.
        final_valid = cnf_valid_stencil(len(conjunction) + 1)
        stencil.func = CompareFunc.EQUAL
        stencil.mask = _DNF_WORK_MASK | _DNF_ACCEPT_BIT
        stencil.write_mask = _DNF_ACCEPT_BIT
        stencil.reference = final_valid  # accept bit clear in ref
        stencil.zpass = StencilOp.INVERT
        device.state.depth.enabled = False
        device.state.depth_bounds.enabled = False
        query = device.begin_query()
        device.render_quad(0.0, count=count)
        device.end_query()
        matched += query.result(synchronous=True)

    # Normalize to {0, DNF_VALID_STENCIL}: clear the working plane on
    # accepted pixels, zero everything else.
    stencil.func = CompareFunc.EQUAL
    stencil.mask = _DNF_ACCEPT_BIT
    stencil.reference = _DNF_ACCEPT_BIT
    stencil.write_mask = _DNF_WORK_MASK
    stencil.zpass = StencilOp.ZERO
    device.render_quad(0.0, count=count)
    stencil.func = CompareFunc.NOTEQUAL
    stencil.write_mask = STENCIL_MAX
    device.render_quad(0.0, count=count)
    stencil.mask = STENCIL_MAX
    return DNF_VALID_STENCIL, matched

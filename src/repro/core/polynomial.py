"""Polynomial queries — the extension routine 4.2 sketches.

The paper closes its semi-linear section with "This algorithm can also
be extended for evaluating polynomial queries" (section 4.1.2).  This
module does so: predicates of the form

    sum_i  s_i * a_i ** p_i   op   b

with small non-negative integer exponents, compiled to a fragment
program whose power chains are square-and-multiply ``MUL`` sequences —
still branch-free, still one pass, still no depth copy.

Exponent 0 contributes the constant ``s_i`` per record (``a**0 = 1``
even for ``a = 0``, the usual polynomial convention).
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError
from ..gpu.assembler import FragmentProgram, assemble
from ..gpu.types import CompareFunc
from .predicates import SimplePredicate
from .relation import Relation

#: Largest supported exponent (keeps programs inside the temporary
#: register budget; real FX-era programs had similar practical limits).
MAX_EXPONENT = 8


class Polynomial(SimplePredicate):
    """``sum_i s_i * a_i**p_i  op  b`` over up to four attributes."""

    def __init__(self, columns, coefficients, exponents, op, constant):
        columns = tuple(columns)
        coefficients = tuple(float(c) for c in coefficients)
        exponents = tuple(int(p) for p in exponents)
        if not 1 <= len(columns) <= 4:
            raise QueryError(
                f"polynomial predicates take 1-4 attributes, "
                f"got {len(columns)}"
            )
        if not (
            len(columns) == len(coefficients) == len(exponents)
        ):
            raise QueryError(
                "columns, coefficients and exponents must align"
            )
        if any(p < 0 or p > MAX_EXPONENT for p in exponents):
            raise QueryError(
                f"exponents must lie in [0, {MAX_EXPONENT}]"
            )
        if op in (CompareFunc.NEVER, CompareFunc.ALWAYS):
            raise QueryError(
                "polynomial predicates require a value operator"
            )
        self.columns = columns
        self.coefficients = coefficients
        self.exponents = exponents
        self.op = op
        self.constant = float(constant)

    def mask(self, relation: Relation) -> np.ndarray:
        """Reference evaluation in float32, mirroring the pipeline."""
        total = np.zeros(relation.num_records, dtype=np.float32)
        for name, coefficient, exponent in zip(
            self.columns, self.coefficients, self.exponents
        ):
            values = relation.column(name).values
            term = np.ones(relation.num_records, dtype=np.float32)
            # Same multiplication order as the generated program.
            for _ in range(exponent):
                term = (term * values).astype(np.float32)
            total += np.float32(coefficient) * term
        return self.op.apply(total, np.float32(self.constant))

    def negated(self) -> "Polynomial":
        return Polynomial(
            self.columns,
            self.coefficients,
            self.exponents,
            self.op.negate(),
            self.constant,
        )

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{c:g}*{name}^{p}"
            for c, name, p in zip(
                self.coefficients, self.columns, self.exponents
            )
        )
        return f"({terms} {self.op.value} {self.constant:g})"


_CHANNELS = "xyzw"


def polynomial_program(
    exponents: tuple[int, ...], op: CompareFunc
) -> FragmentProgram:
    """Compile a polynomial predicate into a fragment program.

    ``p[0]`` carries the coefficients, ``p[1]`` the constant ``b``.  The
    program accumulates each term with a repeated-multiplication chain
    in float32 (exact for integer attributes while the running product
    stays below 2**24), then reuses the semi-linear comparison/KIL
    epilogue: surviving fragments satisfy the predicate.
    """
    if not 1 <= len(exponents) <= 4:
        raise QueryError(
            f"polynomial programs take 1-4 exponents, got {len(exponents)}"
        )
    if any(p < 0 or p > MAX_EXPONENT for p in exponents):
        raise QueryError(f"exponents must lie in [0, {MAX_EXPONENT}]")

    lines = ["!!FP1.0", "TEX R0, f[TEX0], TEX0, 2D;"]
    # R1 accumulates the polynomial value in .x; R2 is the power chain.
    lines.append("MOV R1.x, {0};")
    for index, exponent in enumerate(exponents):
        channel = _CHANNELS[index]
        if exponent == 0:
            # a**0 == 1: the term is just the coefficient.
            lines.append(f"ADD R1.x, R1.x, p[0].{channel};")
            continue
        lines.append(f"MOV R2.x, R0.{channel};")
        for _ in range(exponent - 1):
            lines.append(f"MUL R2.x, R2.x, R0.{channel};")
        lines.append(f"MAD R1.x, R2.x, p[0].{channel}, R1.x;")

    if op is CompareFunc.GEQUAL:
        lines += ["SUB R3, R1.x, p[1];", "KIL R3.x;"]
    elif op is CompareFunc.GREATER:
        lines += ["SGE R3, p[1], R1.x;", "KIL -R3.x;"]
    elif op is CompareFunc.LESS:
        lines += ["SGE R3, R1.x, p[1];", "KIL -R3.x;"]
    elif op is CompareFunc.LEQUAL:
        lines += ["SLT R3, p[1], R1.x;", "KIL -R3.x;"]
    elif op is CompareFunc.EQUAL:
        lines += [
            "SGE R3, R1.x, p[1];",
            "SGE R4, p[1], R1.x;",
            "MUL R3, R3, R4;",
            "SUB R3, R3, {0.5};",
            "KIL R3.x;",
        ]
    elif op is CompareFunc.NOTEQUAL:
        lines += [
            "SGE R3, R1.x, p[1];",
            "SGE R4, p[1], R1.x;",
            "MUL R3, R3, R4;",
            "SUB R3, {0.5}, R3;",
            "KIL R3.x;",
        ]
    else:  # pragma: no cover - constructor rejects NEVER/ALWAYS
        raise QueryError(f"unsupported operator {op.name}")
    lines.append("END")
    name = "polynomial." + "-".join(str(p) for p in exponents)
    return assemble("\n".join(lines), name=name)


def polynomial_pass(device, texture, predicate: Polynomial) -> None:
    """Render one quad running the compiled polynomial program.

    Same contract as ``semilinear_pass``: satisfying fragments survive
    to the stencil stage; the caller configures recording/counting.
    """
    coefficients = np.zeros(4, dtype=np.float32)
    coefficients[: len(predicate.coefficients)] = predicate.coefficients
    program = polynomial_program(predicate.exponents, predicate.op)
    state = device.state
    state.depth.enabled = False
    state.depth_bounds.enabled = False
    state.alpha.enabled = False
    device.set_program(program)
    device.set_program_parameter(0, coefficients)
    device.set_program_parameter(1, predicate.constant)
    device.render_textured_quad(texture)
    device.set_program(None)

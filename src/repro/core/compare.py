"""Routine 4.1: ``Compare`` / ``CopyToDepth``.

A predicate ``attribute op constant`` is evaluated by (1) copying the
attribute values into the depth buffer with a three-instruction fragment
program and (2) rendering a screen-filling quad at the constant's
normalized depth with the depth test configured appropriately.

Operator orientation: the OpenGL depth test passes when
``fragment_depth func stored_depth``.  The fragment depth carries the
*constant* and the stored depth carries the *attribute*, so a predicate
``attribute op constant`` renders with ``func = op.swap()``
(e.g. ``attribute >= c``  ⇔  ``c <= attribute``  ⇒  ``LEQUAL``).
"""

from __future__ import annotations


from functools import lru_cache

from ..errors import QueryError
from ..faults import SITE_DEPTH_COPY, maybe_inject
from ..gpu.pipeline import Device
from ..gpu.programs import copy_to_depth_program
from ..gpu.texture import Texture
from ..gpu.types import CompareFunc


@lru_cache(maxsize=8)
def _copy_program(channel: int):
    return copy_to_depth_program(channel)


def copy_to_depth(
    device: Device,
    texture: Texture,
    scale: float,
    channel: int = 0,
) -> None:
    """``CopyToDepth``: route attribute values into the depth buffer.

    Disables every test so all valid texels are written; leaves the
    device with no program bound, depth writes off, and the depth test
    enabled (ready for comparison quads).
    """
    maybe_inject(SITE_DEPTH_COPY, tracer=device.tracer)
    state = device.state
    # Restore in place: callers (e.g. EvalCNF's clause loop) hold live
    # references to the stencil-state object, so it must not be replaced.
    stencil_was_enabled = state.stencil.enabled
    state.stencil.enabled = False
    state.alpha.enabled = False
    state.depth_bounds.enabled = False
    state.color_mask = (False, False, False, False)
    state.depth.enabled = True
    state.depth.func = CompareFunc.ALWAYS
    state.depth.write = True

    device.set_program(_copy_program(channel))
    device.set_program_parameter(0, scale)
    device.render_textured_quad(texture)
    device.set_program(None)

    state.depth.write = False
    state.stencil.enabled = stencil_was_enabled


def compare_pass(
    device: Device,
    op: CompareFunc,
    constant_depth: float,
    count: int,
) -> None:
    """Render the comparison quad of ``Compare`` (line 3 of routine 4.1).

    Assumes the attribute already sits in the depth buffer.  Fragments
    for which ``attribute op constant`` holds pass the depth test; the
    caller decides what passing means (stencil op, occlusion count).
    """
    if op in (CompareFunc.NEVER, CompareFunc.ALWAYS):
        raise QueryError("comparison passes need a value operator")
    state = device.state
    state.depth.enabled = True
    state.depth.func = op.swap()
    state.depth.write = False
    state.depth_bounds.enabled = False
    device.render_quad(constant_depth, count=count)


def compare(
    device: Device,
    texture: Texture,
    op: CompareFunc,
    constant_depth: float,
    scale: float,
    channel: int = 0,
) -> None:
    """Full routine 4.1: copy then compare.  Stencil/occlusion recording
    is configured by the caller before invoking."""
    copy_to_depth(device, texture, scale, channel=channel)
    compare_pass(device, op, constant_depth, texture.count)

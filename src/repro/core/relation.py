"""Relations: named collections of equal-length columns.

The in-memory relational table (paper section 4: "a relational table T
of m attributes").  A relation is engine-agnostic; the GPU engine turns
its columns into textures, the CPU engine scans them directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..errors import DataError, QueryError
from .column import Column


class Relation:
    """An ordered, named set of columns with a common record count."""

    def __init__(self, name: str, columns: Iterable[Column]):
        columns = list(columns)
        if not columns:
            raise DataError(f"relation {name!r} needs at least one column")
        lengths = {column.num_records for column in columns}
        if len(lengths) != 1:
            raise DataError(
                f"relation {name!r}: column lengths differ: {sorted(lengths)}"
            )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise DataError(
                f"relation {name!r}: duplicate column names in {names}"
            )
        self.name = name
        self._columns = {column.name: column for column in columns}
        self._order = names
        self.num_records = lengths.pop()

    @classmethod
    def from_arrays(
        cls,
        name: str,
        arrays: Mapping[str, np.ndarray],
        integer: bool = True,
    ) -> "Relation":
        """Build a relation from a name -> array mapping.  ``integer``
        selects the column type for every array; mix types by building
        :class:`Column` objects directly."""
        builder = Column.integer if integer else Column.floating
        return cls(
            name,
            [builder(key, value) for key, value in arrays.items()],
        )

    # -- access ----------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return list(self._order)

    @property
    def num_columns(self) -> int:
        return len(self._order)

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise QueryError(
                f"relation {self.name!r} has no column {name!r}; "
                f"available: {self._order}"
            ) from None

    def columns(self, names: Iterable[str] | None = None) -> list[Column]:
        if names is None:
            names = self._order
        return [self.column(name) for name in names]

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.num_records

    def row(self, index: int) -> dict[str, float]:
        """One record as a dict (for examples and debugging)."""
        if not 0 <= index < self.num_records:
            raise QueryError(
                f"row {index} out of range (0..{self.num_records - 1})"
            )
        return {
            name: self._columns[name].values[index].item()
            for name in self._order
        }

    def take(self, indices: np.ndarray) -> "Relation":
        """A new relation containing only the given record indices
        (used to materialize selection results)."""
        out = []
        for name in self._order:
            source = self._columns[name]
            values = source.values[np.asarray(indices, dtype=np.int64)]
            if source.is_integer:
                out.append(Column.integer(name, values, bits=source.bits))
            else:
                out.append(
                    Column.floating(name, values, lo=source.lo, hi=source.hi)
                )
        return Relation(self.name, out)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Relation({self.name!r}, {self.num_records} records, "
            f"columns={self._order})"
        )

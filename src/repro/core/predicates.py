"""Predicate AST and CNF normalization.

The paper's WHERE clauses (section 4) are boolean combinations of simple
predicates ``a_i op constant`` and ``a_i op a_j``, evaluated on the GPU
after rewriting into conjunctive normal form with NOT operators folded
into the comparison operators (section 4.2: "If a simple predicate ...
has a NOT operator, we can invert the comparison operation").

Simple predicate kinds:

* :class:`Comparison` — attribute vs constant (depth-test path),
* :class:`Between`    — range predicate (depth-bounds-test path),
* :class:`SemiLinear` — ``dot(s, a) op b`` (fragment-program path);
  attribute-vs-attribute comparisons are the special case
  ``a_i - a_j op 0`` (section 4.1.2), built by :func:`attr_compare`.

Every predicate also knows how to evaluate itself on the host
(:meth:`Predicate.mask`) *with the same 24-bit depth quantization the
GPU applies*, so the reference semantics and the hardware semantics are
identical by construction.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..errors import QueryError
from ..gpu.framebuffer import depth_to_code
from ..gpu.types import CompareFunc
from .relation import Relation

#: Safety limit on CNF clause blowup during distribution.
MAX_CNF_CLAUSES = 256


class Predicate:
    """Base class for all predicates."""

    def mask(self, relation: Relation) -> np.ndarray:
        """Reference evaluation: boolean mask over the relation's records,
        using the same quantized semantics as the GPU."""
        raise NotImplementedError

    def negated(self) -> "Predicate":
        """The logical complement, with NOT pushed all the way down."""
        raise NotImplementedError

    # Operator sugar so predicates compose readably:
    #   (col("a") > 5) & ~(col("b") <= 3)
    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return self.negated()


class SimplePredicate(Predicate):
    """Marker base for predicates the GPU evaluates in a single
    routine (one clause member of a CNF): comparisons, ranges,
    semi-linear and polynomial terms."""


class Comparison(SimplePredicate):
    """``column op constant``."""

    def __init__(self, column: str, op: CompareFunc, value: float):
        if op in (CompareFunc.NEVER, CompareFunc.ALWAYS):
            raise QueryError(
                "comparisons require a value operator, not NEVER/ALWAYS"
            )
        self.column = column
        self.op = op
        self.value = float(value)

    def mask(self, relation: Relation) -> np.ndarray:
        column = relation.column(self.column)
        codes = depth_to_code(column.normalize(column.values))
        reference = depth_to_code(
            column.normalize(column.clamp_to_domain(self.value))
        )
        return self.op.apply(codes, reference)

    def negated(self) -> "Comparison":
        return Comparison(self.column, self.op.negate(), self.value)

    def __repr__(self) -> str:
        return f"({self.column} {self.op.value} {self.value:g})"


class Between(SimplePredicate):
    """``low <= column <= high`` (inclusive both ends, like SQL BETWEEN)."""

    def __init__(self, column: str, low: float, high: float):
        if low > high:
            raise QueryError(f"BETWEEN bounds inverted: [{low}, {high}]")
        self.column = column
        self.low = float(low)
        self.high = float(high)

    def mask(self, relation: Relation) -> np.ndarray:
        column = relation.column(self.column)
        codes = depth_to_code(column.normalize(column.values))
        low = depth_to_code(
            column.normalize(column.clamp_to_domain(self.low))
        )
        high = depth_to_code(
            column.normalize(column.clamp_to_domain(self.high))
        )
        return (codes >= low) & (codes <= high)

    def negated(self) -> "Or":
        return Or(
            Comparison(self.column, CompareFunc.LESS, self.low),
            Comparison(self.column, CompareFunc.GREATER, self.high),
        )

    def __repr__(self) -> str:
        return f"({self.column} BETWEEN {self.low:g} AND {self.high:g})"


class SemiLinear(SimplePredicate):
    """``sum_i s_i * a_i  op  b`` over up to four attributes
    (routine 4.2), evaluated in float32 like the fragment pipeline."""

    def __init__(
        self,
        columns,
        coefficients,
        op: CompareFunc,
        constant: float,
    ):
        columns = tuple(columns)
        coefficients = tuple(float(c) for c in coefficients)
        if not 1 <= len(columns) <= 4:
            raise QueryError(
                f"semi-linear predicates take 1-4 attributes, "
                f"got {len(columns)}"
            )
        if len(columns) != len(coefficients):
            raise QueryError(
                f"{len(columns)} columns vs {len(coefficients)} coefficients"
            )
        if op in (CompareFunc.NEVER, CompareFunc.ALWAYS):
            raise QueryError(
                "semi-linear predicates require a value operator"
            )
        self.columns = columns
        self.coefficients = coefficients
        self.op = op
        self.constant = float(constant)

    def mask(self, relation: Relation) -> np.ndarray:
        total = np.zeros(relation.num_records, dtype=np.float32)
        for name, coefficient in zip(self.columns, self.coefficients):
            total += relation.column(name).values * np.float32(coefficient)
        return self.op.apply(total, np.float32(self.constant))

    def negated(self) -> "SemiLinear":
        return SemiLinear(
            self.columns, self.coefficients, self.op.negate(), self.constant
        )

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{c:g}*{name}"
            for c, name in zip(self.coefficients, self.columns)
        )
        return f"({terms} {self.op.value} {self.constant:g})"


def attr_compare(left: str, op: CompareFunc, right: str) -> SemiLinear:
    """``a_i op a_j`` rewritten as the semi-linear query
    ``a_i - a_j op 0`` (paper section 4.1.2)."""
    return SemiLinear((left, right), (1.0, -1.0), op, 0.0)


class And(Predicate):
    def __init__(self, *children: Predicate):
        if not children:
            raise QueryError("AND needs at least one operand")
        flat: list[Predicate] = []
        for child in children:
            if isinstance(child, And):
                flat.extend(child.children)
            else:
                flat.append(child)
        self.children = tuple(flat)

    def mask(self, relation: Relation) -> np.ndarray:
        result = self.children[0].mask(relation)
        for child in self.children[1:]:
            result = result & child.mask(relation)
        return result

    def negated(self) -> "Or":
        return Or(*[child.negated() for child in self.children])

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.children)) + ")"


class Or(Predicate):
    def __init__(self, *children: Predicate):
        if not children:
            raise QueryError("OR needs at least one operand")
        flat: list[Predicate] = []
        for child in children:
            if isinstance(child, Or):
                flat.extend(child.children)
            else:
                flat.append(child)
        self.children = tuple(flat)

    def mask(self, relation: Relation) -> np.ndarray:
        result = self.children[0].mask(relation)
        for child in self.children[1:]:
            result = result | child.mask(relation)
        return result

    def negated(self) -> "And":
        return And(*[child.negated() for child in self.children])

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.children)) + ")"


class Not(Predicate):
    """Explicit negation node; eliminated by :func:`to_cnf`."""

    def __init__(self, child: Predicate):
        self.child = child

    def mask(self, relation: Relation) -> np.ndarray:
        return ~self.child.mask(relation)

    def negated(self) -> Predicate:
        return self.child

    def __repr__(self) -> str:
        return f"(NOT {self.child!r})"


def is_simple(predicate: Predicate) -> bool:
    return isinstance(predicate, SimplePredicate)


def _push_not(predicate: Predicate) -> Predicate:
    """Eliminate Not nodes by pushing negation onto simple predicates."""
    if isinstance(predicate, Not):
        return _push_not(predicate.child.negated())
    if isinstance(predicate, And):
        return And(*[_push_not(child) for child in predicate.children])
    if isinstance(predicate, Or):
        return Or(*[_push_not(child) for child in predicate.children])
    return predicate


def to_cnf(predicate: Predicate) -> list[list[Predicate]]:
    """Rewrite into CNF: a list of clauses, each a list of simple
    predicates joined by OR; clauses are joined by AND.

    NOT is folded into comparison operators first (Between negation
    expands into two comparisons).  Distribution of OR over AND bounds
    the blowup at :data:`MAX_CNF_CLAUSES` clauses.
    """
    predicate = _push_not(predicate)
    clauses = _cnf_clauses(predicate)
    if len(clauses) > MAX_CNF_CLAUSES:
        raise QueryError(
            f"CNF conversion produced {len(clauses)} clauses "
            f"(limit {MAX_CNF_CLAUSES}); simplify the query"
        )
    return clauses


def _cnf_clauses(predicate: Predicate) -> list[list[Predicate]]:
    if is_simple(predicate):
        return [[predicate]]
    if isinstance(predicate, And):
        clauses: list[list[Predicate]] = []
        for child in predicate.children:
            clauses.extend(_cnf_clauses(child))
        return clauses
    if isinstance(predicate, Or):
        # OR over children: cross-product of the children's clauses.
        child_clause_lists = [
            _cnf_clauses(child) for child in predicate.children
        ]
        total = 1
        for clause_list in child_clause_lists:
            total *= len(clause_list)
            if total > MAX_CNF_CLAUSES:
                raise QueryError(
                    f"CNF conversion exceeds {MAX_CNF_CLAUSES} clauses; "
                    "simplify the query"
                )
        clauses = []
        for combo in itertools.product(*child_clause_lists):
            merged: list[Predicate] = []
            for clause in combo:
                merged.extend(clause)
            clauses.append(merged)
        return clauses
    raise QueryError(
        f"cannot normalize predicate of type {type(predicate).__name__}"
    )


def to_dnf(predicate: Predicate) -> list[list[Predicate]]:
    """Rewrite into DNF: a list of clauses, each a list of simple
    predicates joined by AND; clauses are joined by OR.

    The dual of :func:`to_cnf`; the selection executor picks whichever
    normal form yields fewer passes (the paper notes EvalCNF "can
    easily" handle DNF as well).
    """
    predicate = _push_not(predicate)
    clauses = _dnf_clauses(predicate)
    if len(clauses) > MAX_CNF_CLAUSES:
        raise QueryError(
            f"DNF conversion produced {len(clauses)} clauses "
            f"(limit {MAX_CNF_CLAUSES}); simplify the query"
        )
    return clauses


def _dnf_clauses(predicate: Predicate) -> list[list[Predicate]]:
    if is_simple(predicate):
        return [[predicate]]
    if isinstance(predicate, Or):
        clauses: list[list[Predicate]] = []
        for child in predicate.children:
            clauses.extend(_dnf_clauses(child))
        return clauses
    if isinstance(predicate, And):
        # AND over children: cross-product of the children's clauses.
        child_clause_lists = [
            _dnf_clauses(child) for child in predicate.children
        ]
        total = 1
        for clause_list in child_clause_lists:
            total *= len(clause_list)
            if total > MAX_CNF_CLAUSES:
                raise QueryError(
                    f"DNF conversion exceeds {MAX_CNF_CLAUSES} clauses; "
                    "simplify the query"
                )
        clauses = []
        for combo in itertools.product(*child_clause_lists):
            merged: list[Predicate] = []
            for clause in combo:
                merged.extend(clause)
            clauses.append(merged)
        return clauses
    raise QueryError(
        f"cannot normalize predicate of type {type(predicate).__name__}"
    )


class ColumnRef:
    """Fluent predicate builder: ``col('flow_rate') >= 100``."""

    def __init__(self, name: str):
        self.name = name

    def __lt__(self, value) -> Predicate:
        return self._build(CompareFunc.LESS, value)

    def __le__(self, value) -> Predicate:
        return self._build(CompareFunc.LEQUAL, value)

    def __gt__(self, value) -> Predicate:
        return self._build(CompareFunc.GREATER, value)

    def __ge__(self, value) -> Predicate:
        return self._build(CompareFunc.GEQUAL, value)

    def __eq__(self, value) -> Predicate:  # type: ignore[override]
        return self._build(CompareFunc.EQUAL, value)

    def __ne__(self, value) -> Predicate:  # type: ignore[override]
        return self._build(CompareFunc.NOTEQUAL, value)

    def __hash__(self):
        return hash(self.name)

    def between(self, low: float, high: float) -> Between:
        return Between(self.name, low, high)

    def _build(self, op: CompareFunc, value) -> Predicate:
        if isinstance(value, ColumnRef):
            return attr_compare(self.name, op, value.name)
        return Comparison(self.name, op, value)


def col(name: str) -> ColumnRef:
    """Shorthand constructor for fluent predicates."""
    return ColumnRef(name)

"""The shared cost-accessor protocol every result object satisfies.

Engine operations, whole SQL queries and service round-trips all answer
the same three questions about what they cost, no matter which layer
produced them:

* ``time_ms``    — simulated device milliseconds (GeForce-FX modeled
  time for GPU results, dual-Xeon modeled time for CPU results, the
  sum over constituent operations for queries);
* ``pass_count`` — rendering passes issued (0 for CPU results);
* ``stats``      — the merged :class:`~repro.gpu.counters.PipelineStats`
  window (empty for CPU results), built with
  :meth:`PipelineStats.merged <repro.gpu.counters.PipelineStats.merged>`.

:class:`CostedResult` is the structural contract:
``GpuOpResult`` / ``Selection`` (:mod:`repro.core.engine`),
``CpuOpResult`` / ``CpuSelection`` (:mod:`repro.core.cpu_engine`),
``QueryResult`` (:mod:`repro.sql.executor`) and ``ServiceResult``
(:mod:`repro.service.service`) all satisfy it, so benchmark and
reporting code can price any of them without isinstance ladders::

    from repro.core.results import CostedResult

    def total_cost(results: list[CostedResult]) -> float:
        return sum(r.time_ms for r in results)

The protocol is ``runtime_checkable``: ``isinstance(obj, CostedResult)``
checks the three attributes exist (not their types), which the
conformance tests pin for every result class.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..gpu.counters import PipelineStats


@runtime_checkable
class CostedResult(Protocol):
    """Structural type of every result object with unified cost
    accessors."""

    @property
    def time_ms(self) -> float:
        """Simulated device milliseconds."""
        ...

    @property
    def pass_count(self) -> int:
        """Rendering passes issued (0 on CPU)."""
        ...

    @property
    def stats(self) -> PipelineStats:
        """Merged pipeline-statistics window."""
        ...

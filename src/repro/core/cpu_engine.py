"""CPU query engine: the paper's optimized baseline behind the same API.

:class:`CpuEngine` mirrors :class:`~repro.core.engine.GpuEngine` method
for method, so integration tests can assert both engines agree on every
answer, and the benchmark harness can price both sides of each figure.

Answers come from the vectorized scans in :mod:`repro.cpu`; simulated
dual-Xeon timings come from :class:`~repro.cpu.cost.CpuCostModel` driven
by the *structure* of the query (records scanned, predicate terms,
selection compaction), mirroring how the GPU side is priced from
pipeline counters.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..cpu import aggregate as cpu_aggregate
from ..cpu.quickselect import partition_select
from ..cpu.quickselect import quickselect as hoare_quickselect
from ..cpu.cost import CpuCostModel
from ..errors import QueryError
from ..trace import current_tracer
from .polynomial import Polynomial
from .predicates import (
    And,
    Between,
    Comparison,
    Not,
    Or,
    Predicate,
    SemiLinear,
)
from .relation import Relation


def predicate_terms(predicate: Predicate, model: CpuCostModel) -> float:
    """Equivalent simple-predicate terms a fused CPU scan evaluates per
    record for this predicate (figure 5's linear-in-attributes cost)."""
    if isinstance(predicate, Comparison):
        return 1.0
    if isinstance(predicate, Between):
        return model.range_term_factor
    if isinstance(predicate, SemiLinear):
        return model.semilinear_ns_per_record / model.predicate_ns_per_record
    if isinstance(predicate, Polynomial):
        # A multiply per exponent step on top of the semi-linear scan.
        multiplies = sum(max(p - 1, 0) for p in predicate.exponents)
        base = model.semilinear_ns_per_record / model.predicate_ns_per_record
        return base + 0.15 * multiplies
    if isinstance(predicate, Not):
        return predicate_terms(predicate.child, model)
    if isinstance(predicate, (And, Or)):
        return sum(
            predicate_terms(child, model) for child in predicate.children
        )
    raise QueryError(
        f"cannot price predicate of type {type(predicate).__name__}"
    )


@dataclasses.dataclass
class CpuOpResult:
    """Answer plus simulated CPU seconds."""

    value: object
    modeled_s: float

    @property
    def modeled_ms(self) -> float:
        return self.modeled_s * 1e3

    # -- unified result accessors (shared with GpuOpResult/QueryResult) --

    @property
    def time_ms(self) -> float:
        """Simulated dual-Xeon milliseconds (alias of ``modeled_ms``)."""
        return self.modeled_ms

    @property
    def pass_count(self) -> int:
        """The CPU issues no rendering passes."""
        return 0

    @property
    def stats(self):
        """An empty pipeline-statistics window (no GPU work)."""
        from ..gpu.counters import PipelineStats

        return PipelineStats()


@dataclasses.dataclass
class CpuSelection(CpuOpResult):
    mask: np.ndarray = None
    total_records: int = 0

    @property
    def count(self) -> int:
        return int(self.value)

    @property
    def selectivity(self) -> float:
        if self.total_records == 0:
            return 0.0
        return self.count / self.total_records

    def record_ids(self) -> np.ndarray:
        return np.flatnonzero(self.mask)


class CpuEngine:
    """CPU-backed query engine over one relation."""

    def __init__(
        self,
        relation: Relation,
        cost_model: CpuCostModel | None = None,
        faithful_quickselect: bool = False,
        tracer=None,
    ):
        self.relation = relation
        self.cost_model = cost_model or CpuCostModel()
        #: Use the pure-Python Hoare FIND (paper-faithful but slow to
        #: *actually run*) instead of numpy.partition.  Identical values.
        self.faithful_quickselect = faithful_quickselect
        #: Optional :class:`~repro.trace.Tracer` — each operation
        #: becomes a span (no pass events; the CPU has no passes).
        #: Defaults to the process-wide tracer, usually ``None``.
        self.tracer = tracer if tracer is not None else current_tracer()

    # -- measurement helpers -----------------------------------------------------

    def _begin(self, op: str, **attrs):
        if self.tracer is None:
            return None
        return self.tracer.begin(op, **attrs)

    def _finish(self, span, result: CpuOpResult) -> CpuOpResult:
        if span is not None:
            self.tracer.end(span, modeled_ms=result.modeled_ms)
        return result

    @staticmethod
    def _validate_k(k: int, valid_count: int) -> None:
        if not 1 <= k <= valid_count:
            raise QueryError(
                f"k={k} outside [1, {valid_count}] valid records"
            )

    # -- selection ---------------------------------------------------------------

    def select(self, predicate: Predicate) -> CpuSelection:
        span = self._begin("select", predicate=str(predicate))
        records = self.relation.num_records
        mask = predicate.mask(self.relation)
        terms = predicate_terms(predicate, self.cost_model)
        modeled = self.cost_model.predicate_scan_s(records, terms)
        return self._finish(span, CpuSelection(
            value=int(np.count_nonzero(mask)),
            modeled_s=modeled,
            mask=mask,
            total_records=records,
        ))

    def count(self, predicate: Predicate | None = None) -> CpuOpResult:
        if predicate is not None:
            return self.select(predicate)
        span = self._begin("count")
        records = self.relation.num_records
        return self._finish(span, CpuOpResult(
            value=records, modeled_s=self.cost_model.count_s(records)
        ))

    def selectivity(self, predicate: Predicate) -> float:
        return self.select(predicate).selectivity

    # -- helpers -----------------------------------------------------------------------

    def _column_values(
        self, column_name: str, predicate: Predicate | None
    ) -> tuple[np.ndarray, float, int]:
        """Selected values, the selectivity, and total records scanned.

        Bit-sliceable columns (integer / fixed-point) are returned in
        their *stored* integer domain so order statistics and sums use
        exactly the arithmetic the GPU's bit-sliced algorithms use;
        callers map results back with ``_from_stored``.
        """
        column = self.relation.column(column_name)
        if column.supports_bit_slicing:
            values = column.stored_values()
        else:
            values = column.values
        if predicate is None:
            return values, 1.0, self.relation.num_records
        selection = self.select(predicate)
        return (
            values[selection.mask],
            selection.selectivity,
            self.relation.num_records,
        )

    def _from_stored(self, column_name: str, stored):
        column = self.relation.column(column_name)
        if column.supports_bit_slicing:
            return column.from_stored(stored)
        return stored

    def _select_kth(self, values: np.ndarray, k: int) -> float:
        if self.faithful_quickselect:
            return hoare_quickselect(values, k)
        return partition_select(values, k)

    def _order_statistic_cost(
        self,
        records: int,
        selectivity: float,
        predicate: Predicate | None,
        k: int | None = None,
    ) -> float:
        if predicate is None:
            return self.cost_model.quickselect_s(records, k)
        # Selection scan + compaction + QuickSelect over survivors
        # (paper section 5.9 test 3: the CPU must copy valid data out).
        terms = predicate_terms(predicate, self.cost_model)
        return self.cost_model.predicate_scan_s(
            records, terms
        ) + self.cost_model.quickselect_with_selection_s(
            records, selectivity, k
        )

    # -- order statistics ------------------------------------------------------------------

    def kth_largest(
        self, column_name: str, k: int, predicate: Predicate | None = None
    ) -> CpuOpResult:
        self._validate_k(k, self.relation.num_records)
        span = self._begin("kth_largest", column=column_name, k=k)
        values, selectivity, records = self._column_values(
            column_name, predicate
        )
        self._validate_k(k, values.size)
        value = self._select_kth(values, k)
        return self._finish(span, CpuOpResult(
            value=self._from_stored(column_name, int(value)),
            modeled_s=self._order_statistic_cost(
                records, selectivity, predicate, k
            ),
        ))

    def kth_smallest(
        self, column_name: str, k: int, predicate: Predicate | None = None
    ) -> CpuOpResult:
        self._validate_k(k, self.relation.num_records)
        span = self._begin("kth_smallest", column=column_name, k=k)
        values, selectivity, records = self._column_values(
            column_name, predicate
        )
        self._validate_k(k, values.size)
        value = self._select_kth(values, values.size - k + 1)
        return self._finish(span, CpuOpResult(
            value=self._from_stored(column_name, int(value)),
            modeled_s=self._order_statistic_cost(
                records, selectivity, predicate, k
            ),
        ))

    def maximum(self, column_name, predicate=None) -> CpuOpResult:
        span = self._begin("maximum", column=column_name)
        values, _sel, records = self._column_values(column_name, predicate)
        if values.size == 0:
            raise QueryError("MAX of an empty selection")
        return self._finish(span, CpuOpResult(
            value=self._from_stored(
                column_name, int(cpu_aggregate.maximum(values))
            ),
            modeled_s=self.cost_model.sum_s(records),
        ))

    def minimum(self, column_name, predicate=None) -> CpuOpResult:
        span = self._begin("minimum", column=column_name)
        values, _sel, records = self._column_values(column_name, predicate)
        if values.size == 0:
            raise QueryError("MIN of an empty selection")
        return self._finish(span, CpuOpResult(
            value=self._from_stored(
                column_name, int(cpu_aggregate.minimum(values))
            ),
            modeled_s=self.cost_model.sum_s(records),
        ))

    def median(self, column_name, predicate=None) -> CpuOpResult:
        span = self._begin("median", column=column_name)
        values, selectivity, records = self._column_values(
            column_name, predicate
        )
        if values.size == 0:
            raise QueryError("median of an empty selection")
        k = (values.size + 1) // 2
        value = self._select_kth(values, k)
        return self._finish(span, CpuOpResult(
            value=self._from_stored(column_name, int(value)),
            modeled_s=self._order_statistic_cost(
                records, selectivity, predicate
            ),
        ))

    def top_k(
        self, column_name: str, k: int, predicate: Predicate | None = None
    ) -> CpuOpResult:
        """Record ids of the k largest values, ties included — mirrors
        :meth:`repro.core.engine.GpuEngine.top_k`.  ``value`` has
        ``threshold`` and ``record_ids`` attributes."""
        from .engine import TopK

        column = self.relation.column(column_name)
        self._validate_k(k, self.relation.num_records)
        span = self._begin("top_k", column=column_name, k=k)
        if column.supports_bit_slicing:
            values = column.stored_values()
        else:
            values = column.values
        if predicate is None:
            mask = np.ones(values.size, dtype=bool)
            selectivity = 1.0
        else:
            selection = self.select(predicate)
            mask = selection.mask
            selectivity = selection.selectivity
        selected = values[mask]
        self._validate_k(k, selected.size)
        threshold = int(self._select_kth(selected, k))
        ids = np.flatnonzero(mask & (values >= threshold))
        return self._finish(span, CpuOpResult(
            value=TopK(
                threshold=self._from_stored(column_name, threshold),
                record_ids=ids,
            ),
            modeled_s=self._order_statistic_cost(
                self.relation.num_records, selectivity, predicate, k
            ),
        ))

    def quantiles(
        self,
        column_name: str,
        fractions: list[float],
        predicate: Predicate | None = None,
    ) -> CpuOpResult:
        """Quantile ladder (CPU twin of
        :meth:`~repro.core.engine.GpuEngine.quantiles`)."""
        import math

        span = self._begin(
            "quantiles", column=column_name, fractions=list(fractions)
        )
        values, selectivity, records = self._column_values(
            column_name, predicate
        )
        if not fractions:
            raise QueryError("quantiles() needs at least one fraction")
        if any(not 0.0 <= q <= 1.0 for q in fractions):
            raise QueryError(
                f"fractions must lie in [0, 1], got {fractions}"
            )
        if values.size == 0:
            raise QueryError("quantiles of an empty selection")
        out = []
        modeled = 0.0
        for q in fractions:
            k = min(
                max(math.ceil((1.0 - q) * values.size), 1), values.size
            )
            out.append(
                self._from_stored(
                    column_name, int(self._select_kth(values, k))
                )
            )
            modeled += self._order_statistic_cost(
                records, selectivity, predicate, k
            )
        return self._finish(
            span, CpuOpResult(value=out, modeled_s=modeled)
        )

    def selectivities(self, predicates) -> CpuOpResult:
        """Batched selectivity analysis (CPU twin of
        :meth:`~repro.core.engine.GpuEngine.selectivities`)."""
        if not predicates:
            raise QueryError(
                "selectivities() needs at least one predicate"
            )
        span = self._begin(
            "selectivities", num_predicates=len(predicates)
        )
        counts = [self.select(p).count for p in predicates]
        modeled = sum(
            self.cost_model.predicate_scan_s(
                self.relation.num_records,
                predicate_terms(p, self.cost_model),
            )
            for p in predicates
        )
        return self._finish(
            span, CpuOpResult(value=counts, modeled_s=modeled)
        )

    def histogram(
        self, column_name: str, buckets: int = 32
    ) -> CpuOpResult:
        """Bucketed value counts with the same integer edges as the GPU
        histogram.  ``value`` is ``(edges, counts)``."""
        column = self.relation.column(column_name)
        if not column.is_integer:
            raise QueryError("histogram requires an integer column")
        if buckets < 1:
            raise QueryError(f"need at least one bucket, got {buckets}")
        span = self._begin("histogram", column=column_name,
                           buckets=buckets)
        # Same value-domain edges as the GPU histogram: [lo, lo+2**bits)
        # (lo = -bias for bias-encoded signed columns).
        lo = int(column.lo)
        top = lo + (1 << column.bits)
        edges = np.unique(
            np.floor(np.linspace(lo, top, buckets + 1)).astype(
                np.int64
            )
        )
        if edges[-1] != top:
            edges[-1] = top
        counts, _bins = np.histogram(
            column.values.astype(np.int64), bins=edges
        )
        records = self.relation.num_records
        return self._finish(span, CpuOpResult(
            value=(edges, counts.astype(np.int64)),
            modeled_s=self.cost_model.predicate_scan_s(records),
        ))

    # -- aggregation -----------------------------------------------------------------------

    def _sum_from_stored(self, column_name: str, total, count: int):
        """Map a stored-domain SUM back to value units (the per-value
        bias does not distribute over a sum)."""
        column = self.relation.column(column_name)
        if column.supports_bit_slicing:
            return column.sum_from_stored(total, count)
        return total

    def sum(self, column_name, predicate=None) -> CpuOpResult:
        span = self._begin("sum", column=column_name)
        values, _sel, records = self._column_values(column_name, predicate)
        return self._finish(span, CpuOpResult(
            value=self._sum_from_stored(
                column_name, cpu_aggregate.exact_sum(values), values.size
            ),
            modeled_s=self.cost_model.sum_s(records),
        ))

    def average(self, column_name, predicate=None) -> CpuOpResult:
        span = self._begin("average", column=column_name)
        values, _sel, records = self._column_values(column_name, predicate)
        if values.size == 0:
            raise QueryError("AVG of an empty selection")
        return self._finish(span, CpuOpResult(
            value=self._sum_from_stored(
                column_name, cpu_aggregate.exact_sum(values), values.size
            )
            / values.size,
            modeled_s=self.cost_model.sum_s(records),
        ))
